//! # dvafs-bench — experiment harness
//!
//! One binary per table/figure of the DVAFS paper (DATE 2017):
//!
//! | target | artefact | run with |
//! |---|---|---|
//! | `table1` | Table I (k parameters) | `cargo run -p dvafs-bench --release --bin table1` |
//! | `fig2` | Fig. 2a–d (f, slack, V, activity) | `--bin fig2` |
//! | `fig3a` | Fig. 3a (energy/word, DAS/DVAS/DVAFS) | `--bin fig3a` |
//! | `fig3b` | Fig. 3b (energy vs RMSE vs baselines) | `--bin fig3b` |
//! | `fig4` | Fig. 4 (SIMD energy/word, SW=8/64) | `--bin fig4` |
//! | `table2` | Table II (SIMD power split) | `--bin table2` |
//! | `fig6` | Fig. 6 (per-layer bits, LeNet-5/AlexNet) | `--bin fig6` |
//! | `fig8` | Fig. 8a/8b (Envision energy/word) | `--bin fig8` |
//! | `table3` | Table III (per-layer power on Envision) | `--bin table3` |
//! | `ablations` | design-choice ablation studies | `--bin ablations` |
//! | `bench_sweep` | `BENCH_sweep.json` (serial vs parallel wall time) | `--bin bench_sweep` |
//!
//! Every binary accepts `--threads N` (default: `DVAFS_THREADS` or the
//! host's available parallelism) and produces **bit-identical stdout for
//! any thread count** — `tests/bins_smoke.rs` runs each one at `--threads
//! 1` and `--threads 4` and diffs the output. Expensive binaries also
//! accept `--fast` for CI-sized runs.
//!
//! Criterion micro-benchmarks of the simulators live in `benches/`.

#![warn(missing_docs)]

use dvafs::executor::Executor;
use std::time::Instant;

/// Shared seed for every experiment binary (full determinism).
pub const EXPERIMENT_SEED: u64 = 0xDA7E2017;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("=== DVAFS reproduction | {id}: {title} ===");
    println!();
}

/// Command-line configuration shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Worker count for sweep execution (`--threads N`; defaults to
    /// `DVAFS_THREADS` or the host parallelism).
    pub threads: usize,
    /// Reduced problem sizes for CI smoke runs (`--fast`).
    pub fast: bool,
    /// Output path override for artefact-writing binaries (`--out PATH`).
    pub out: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`. Unknown flags are ignored so smoke tests
    /// can pass a superset of flags to every binary, but a present
    /// `--threads` with a missing or unparseable value is a hard error —
    /// silently falling back to the default would record benchmarks at a
    /// thread count the user never asked for.
    ///
    /// # Panics
    ///
    /// Panics when `--threads` is given without a valid positive integer.
    #[must_use]
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let threads = if args.iter().any(|a| a == "--threads") {
            value_of("--threads")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    panic!("--threads requires a positive integer value (e.g. --threads 4)")
                })
        } else {
            Executor::from_env().threads()
        };
        BenchArgs {
            threads,
            fast: args.iter().any(|a| a == "--fast"),
            out: value_of("--out"),
        }
    }

    /// The executor configured by these arguments.
    #[must_use]
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }
}

/// One timed figure workload of the `bench_sweep` emitter.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Figure/table identifier (e.g. `"fig3b"`).
    pub figure: String,
    /// Serial (1-thread) wall time in milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time in milliseconds at `threads` workers.
    pub parallel_ms: f64,
}

impl SweepTiming {
    /// Serial-over-parallel speedup (> 1 means parallel won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

/// Times one closure in milliseconds, discarding its result.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> f64 {
    let start = Instant::now();
    let _ = f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Renders the `BENCH_sweep.json` document: per-figure serial vs parallel
/// wall time, the measured thread count, and the host parallelism, so the
/// workspace's performance trajectory is recorded per commit by CI.
#[must_use]
pub fn bench_sweep_json(timings: &[SweepTiming], threads: usize, fast: bool) -> String {
    let rows: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"figure\":\"{}\",\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\
                 \"speedup\":{:.3}}}",
                t.figure,
                t.serial_ms,
                t.parallel_ms,
                t.speedup()
            )
        })
        .collect();
    format!
        (
        "{{\n  \"threads\": {},\n  \"host_parallelism\": {},\n  \"fast\": {},\n  \"figures\": [\n{}\n  ]\n}}\n",
        threads,
        Executor::host_parallelism(),
        fast,
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_fixed() {
        assert_eq!(super::EXPERIMENT_SEED, 0xDA7E2017);
    }

    #[test]
    fn sweep_timing_speedup() {
        let t = SweepTiming {
            figure: "fig3b".into(),
            serial_ms: 100.0,
            parallel_ms: 25.0,
        };
        assert!((t.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bench_sweep_json_shape() {
        let doc = bench_sweep_json(
            &[SweepTiming {
                figure: "fig2".into(),
                serial_ms: 1.0,
                parallel_ms: 0.5,
            }],
            4,
            true,
        );
        assert!(doc.contains("\"threads\": 4"));
        assert!(doc.contains("\"figure\":\"fig2\""));
        assert!(doc.contains("\"speedup\":2.000"));
        assert!(doc.ends_with("}\n"));
    }
}
