//! # dvafs-bench — experiment harness
//!
//! All experiments live in the scenario registry ([`dvafs::scenario`]) and
//! are served by **one** CLI, the `dvafs` binary:
//!
//! ```sh
//! cargo run -p dvafs-bench --release --bin dvafs -- list
//! cargo run -p dvafs-bench --release --bin dvafs -- run fig2 --format json
//! cargo run -p dvafs-bench --release --bin dvafs -- run --all --fast --out artifacts/
//! ```
//!
//! | scenario id | artefact | legacy shim |
//! |---|---|---|
//! | `table1` | Table I (k parameters) | `--bin table1` |
//! | `fig2` | Fig. 2a–d (f, slack, V, activity) | `--bin fig2` |
//! | `fig3a` | Fig. 3a (energy/word, DAS/DVAS/DVAFS) | `--bin fig3a` |
//! | `fig3b` | Fig. 3b (energy vs RMSE vs baselines) | `--bin fig3b` |
//! | `fig4` | Fig. 4 (SIMD energy/word, SW=8/64) | `--bin fig4` |
//! | `table2` | Table II (SIMD power split) | `--bin table2` |
//! | `fig6` | Fig. 6 (per-layer bits, LeNet-5/AlexNet) | `--bin fig6` |
//! | `fig6_vgg` | Fig. 6 at VGG16 scale (16-layer search) | — (registry-only) |
//! | `fig8` | Fig. 8a/8b (Envision energy/word) | `--bin fig8` |
//! | `table3` | Table III (per-layer power on Envision) | `--bin table3` |
//! | `cnn_layerwise` | Sec. IV/V end-to-end tuning on Envision | `cnn_layerwise` example |
//! | `ablations` | design-choice ablation studies | `--bin ablations` |
//! | `bench_sweep` | `BENCH_sweep.json` (wall time per scenario) | `--bin bench_sweep` |
//!
//! The legacy one-binary-per-figure entry points still build; each is a
//! three-line shim that delegates to the registry through [`run_legacy`],
//! so existing commands print **byte-identical stdout** (the smoke tests
//! diff shim output against the in-process scenario rendering).
//!
//! Every scenario accepts `--threads N` (default: `DVAFS_THREADS` or the
//! host's available parallelism) and produces **bit-identical output for
//! any thread count**. `--fast` is uniformly accepted; scenarios that are
//! already CI-sized treat it as a no-op — `dvafs list` documents per
//! scenario what it shrinks.
//!
//! Criterion micro-benchmarks of the simulators live in `benches/`.

#![warn(missing_docs)]

pub mod cli;

use dvafs::executor::Executor;
use dvafs::nn::{BatchPath, NnKernel, SearchStrategy, DEFAULT_BATCH_SIZE};
use dvafs::scenario::{self, ScenarioCtx};

pub use dvafs::report::{bench_sweep_json, median_time_ms, time_ms, SweepTiming};
pub use dvafs::scenario::EXPERIMENT_SEED;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str) {
    print!("{}", scenario::banner_text(id, title));
}

/// Command-line configuration shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Worker count for sweep execution (`--threads N`; defaults to
    /// `DVAFS_THREADS` or the host parallelism).
    pub threads: usize,
    /// Reduced problem sizes for CI smoke runs (`--fast`).
    pub fast: bool,
    /// Output path override for artefact-writing binaries (`--out PATH`).
    pub out: Option<String>,
    /// NN MAC kernel (`--kernel naive|gemm|packed`, default packed).
    pub kernel: NnKernel,
    /// Precision-search strategy (`--search rescan|incremental`, default
    /// incremental).
    pub search: SearchStrategy,
    /// Timed repeats per `bench_sweep` measurement (`--repeats N`,
    /// default 3).
    pub repeats: usize,
    /// NN batch forward path (`--batch-path sample|layer`, default
    /// layer; results are bit-identical either way).
    pub batch_path: BatchPath,
    /// Samples per layer-major chunk (`--batch-size N`, default 16).
    pub batch_size: usize,
}

impl BenchArgs {
    /// Parses `std::env::args`. Unknown flags are ignored so smoke tests
    /// can pass a superset of flags to every legacy binary (the `dvafs`
    /// CLI warns instead — see [`cli`]), but a present `--threads` or
    /// `--out` with a missing (or unparseable) value is a hard error —
    /// silently falling back to a default would record results under a
    /// configuration the user never asked for.
    ///
    /// # Panics
    ///
    /// Panics when `--threads` is given without a valid positive integer,
    /// or `--out` without a value.
    #[must_use]
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&args)
    }

    /// Parses an explicit argument slice (everything after the program
    /// name). See [`BenchArgs::parse`] for the flag semantics.
    ///
    /// # Panics
    ///
    /// Panics when `--threads` is given without a valid positive integer,
    /// or `--out` without a value.
    #[must_use]
    pub fn from_slice(args: &[String]) -> Self {
        // A value is "missing" when the flag is last or followed by
        // another flag — `--out --fast` must not eat `--fast` as a path.
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .filter(|v| !v.starts_with("--"))
                .cloned()
        };
        let threads = if args.iter().any(|a| a == "--threads") {
            value_of("--threads")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    panic!("--threads requires a positive integer value (e.g. --threads 4)")
                })
        } else {
            Executor::from_env().threads()
        };
        let out = if args.iter().any(|a| a == "--out") {
            Some(
                value_of("--out")
                    .unwrap_or_else(|| panic!("--out requires a path value (e.g. --out DIR)")),
            )
        } else {
            None
        };
        let kernel = if args.iter().any(|a| a == "--kernel") {
            let v = value_of("--kernel")
                .unwrap_or_else(|| panic!("--kernel requires a value (naive|gemm|packed)"));
            NnKernel::parse(&v).unwrap_or_else(|e| panic!("{e}"))
        } else {
            NnKernel::default()
        };
        let search = if args.iter().any(|a| a == "--search") {
            let v = value_of("--search")
                .unwrap_or_else(|| panic!("--search requires a value (rescan|incremental)"));
            SearchStrategy::parse(&v).unwrap_or_else(|e| panic!("{e}"))
        } else {
            SearchStrategy::default()
        };
        let repeats = if args.iter().any(|a| a == "--repeats") {
            value_of("--repeats")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    panic!("--repeats requires a positive integer value (e.g. --repeats 3)")
                })
        } else {
            3
        };
        let batch_path = if args.iter().any(|a| a == "--batch-path") {
            let v = value_of("--batch-path")
                .unwrap_or_else(|| panic!("--batch-path requires a value (sample|layer)"));
            BatchPath::parse(&v).unwrap_or_else(|e| panic!("{e}"))
        } else {
            BatchPath::default()
        };
        let batch_size = if args.iter().any(|a| a == "--batch-size") {
            value_of("--batch-size")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    panic!("--batch-size requires a positive integer value (e.g. --batch-size 16)")
                })
        } else {
            DEFAULT_BATCH_SIZE
        };
        BenchArgs {
            threads,
            fast: args.iter().any(|a| a == "--fast"),
            out,
            kernel,
            search,
            repeats,
            batch_path,
            batch_size,
        }
    }

    /// The executor configured by these arguments.
    #[must_use]
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }

    /// The scenario context configured by these arguments.
    #[must_use]
    pub fn ctx(&self) -> ScenarioCtx {
        ScenarioCtx::new()
            .with_executor(self.executor())
            .with_fast(self.fast)
            .with_kernel(self.kernel)
            .with_search(self.search)
            .with_repeats(self.repeats)
            .with_batch_path(self.batch_path)
            .with_batch_size(self.batch_size)
    }
}

/// The body of every legacy figure binary: print the banner, parse the
/// legacy flags (unknown flags ignored), run the scenario, print its
/// presentation text, and write any artifacts (`bench_sweep`'s
/// `BENCH_sweep.json`, honouring `--out` as a file path as the old binary
/// did).
///
/// # Panics
///
/// Panics when `id` is not registered, on invalid `--threads`/`--out`
/// values, or when an artifact cannot be written.
pub fn run_legacy(id: &str) {
    let s = scenario::find(id).unwrap_or_else(|| panic!("scenario {id} not registered"));
    banner(s.label(), s.title());
    let args = BenchArgs::parse();
    let result = s.run(&args.ctx());
    print!("{}", result.text());
    for artifact in result.artifacts() {
        let path = args.out.clone().unwrap_or_else(|| artifact.name.clone());
        std::fs::write(&path, &artifact.contents)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!();
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn seed_is_fixed() {
        assert_eq!(super::EXPERIMENT_SEED, 0xDA7E2017);
    }

    #[test]
    fn from_slice_parses_known_flags() {
        let a = BenchArgs::from_slice(&argv(&[
            "--threads",
            "3",
            "--fast",
            "--out",
            "x.json",
            "--kernel",
            "naive",
            "--search",
            "rescan",
            "--repeats",
            "2",
            "--batch-path",
            "sample",
            "--batch-size",
            "4",
        ]));
        assert_eq!(a.threads, 3);
        assert!(a.fast);
        assert_eq!(a.out.as_deref(), Some("x.json"));
        assert_eq!(a.kernel, NnKernel::Naive);
        assert_eq!(a.search, SearchStrategy::Rescan);
        assert_eq!(a.repeats, 2);
        assert_eq!(a.batch_path, BatchPath::SampleMajor);
        assert_eq!(a.batch_size, 4);
        assert_eq!(a.executor().threads(), 3);
        let ctx = a.ctx();
        assert!(ctx.fast);
        assert_eq!(ctx.kernel, NnKernel::Naive);
        assert_eq!(ctx.search, SearchStrategy::Rescan);
        assert_eq!(ctx.repeats, 2);
        assert_eq!(ctx.batch_path, BatchPath::SampleMajor);
        assert_eq!(ctx.batch_size, 4);
    }

    #[test]
    fn from_slice_ignores_unknown_flags() {
        let a = BenchArgs::from_slice(&argv(&["--bogus", "--threads", "2"]));
        assert_eq!(a.threads, 2);
        assert!(!a.fast);
        assert_eq!(a.batch_path, BatchPath::LayerMajor);
        assert_eq!(a.batch_size, DEFAULT_BATCH_SIZE);
    }

    #[test]
    #[should_panic(expected = "--threads requires a positive integer")]
    fn missing_threads_value_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--threads"]));
    }

    #[test]
    #[should_panic(expected = "--out requires a path value")]
    fn missing_out_value_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--out", "--fast"]));
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn bad_kernel_value_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--kernel", "turbo"]));
    }

    #[test]
    #[should_panic(expected = "unknown search strategy")]
    fn bad_search_value_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--search", "magic"]));
    }

    #[test]
    #[should_panic(expected = "--repeats requires a positive integer")]
    fn zero_repeats_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--repeats", "0"]));
    }

    #[test]
    #[should_panic(expected = "sample|layer")]
    fn bad_batch_path_value_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--batch-path", "diagonal"]));
    }

    #[test]
    #[should_panic(expected = "--batch-size requires a positive integer")]
    fn zero_batch_size_is_fatal() {
        let _ = BenchArgs::from_slice(&argv(&["--batch-size", "0"]));
    }
}
