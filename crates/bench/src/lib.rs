//! # dvafs-bench — experiment harness
//!
//! One binary per table/figure of the DVAFS paper (DATE 2017):
//!
//! | target | artefact | run with |
//! |---|---|---|
//! | `table1` | Table I (k parameters) | `cargo run -p dvafs-bench --release --bin table1` |
//! | `fig2` | Fig. 2a–d (f, slack, V, activity) | `--bin fig2` |
//! | `fig3a` | Fig. 3a (energy/word, DAS/DVAS/DVAFS) | `--bin fig3a` |
//! | `fig3b` | Fig. 3b (energy vs RMSE vs baselines) | `--bin fig3b` |
//! | `fig4` | Fig. 4 (SIMD energy/word, SW=8/64) | `--bin fig4` |
//! | `table2` | Table II (SIMD power split) | `--bin table2` |
//! | `fig6` | Fig. 6 (per-layer bits, LeNet-5/AlexNet) | `--bin fig6` |
//! | `fig8` | Fig. 8a/8b (Envision energy/word) | `--bin fig8` |
//! | `table3` | Table III (per-layer power on Envision) | `--bin table3` |
//! | `ablations` | design-choice ablation studies | `--bin ablations` |
//!
//! Criterion micro-benchmarks of the simulators live in `benches/`.

#![warn(missing_docs)]

/// Shared seed for every experiment binary (full determinism).
pub const EXPERIMENT_SEED: u64 = 0xDA7E2017;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("=== DVAFS reproduction | {id}: {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn seed_is_fixed() {
        assert_eq!(super::EXPERIMENT_SEED, 0xDA7E2017);
    }
}
