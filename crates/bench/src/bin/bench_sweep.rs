//! BENCH_sweep.json emitter: wall time per scenario — see `dvafs run bench_sweep`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary preserves the original command line
//! (including `--out` as the artifact *file* path). Unlike the other
//! shims its stdout is **not** byte-identical to the pre-registry binary:
//! the sweep now times every registered scenario through the registry, so
//! the `measured <id>` line count grew from 6 to 10.

fn main() {
    dvafs_bench::run_legacy("bench_sweep");
}
