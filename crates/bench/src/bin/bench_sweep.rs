//! Emits `BENCH_sweep.json`: wall time of every parallelized figure
//! workload, serial vs parallel, plus thread count and host parallelism —
//! the per-commit performance record CI uploads as an artifact.
//!
//! While timing, the emitter also *verifies* the determinism contract: the
//! parallel result of every workload is asserted bit-identical to the
//! serial result before a timing is recorded.
//!
//! Timings go to the JSON file only — stdout stays byte-stable across
//! thread counts and runs, so the smoke tests can diff it like any other
//! figure binary. Output path: `--out PATH` (default `BENCH_sweep.json`
//! in the working directory).

use dvafs::executor::Executor;
use dvafs::sweep::MultiplierSweep;
use dvafs_bench::{bench_sweep_json, time_ms, SweepTiming};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::{table3_with, Fig8Sweep};
use dvafs_nn::dataset::SyntheticDataset;
use dvafs_nn::models;
use dvafs_nn::precision::{prediction_diversity, Operand, PrecisionSearch};

/// Times `workload` on one thread and on `par`, asserting both runs
/// produce identical results.
fn measure<R: PartialEq>(
    figure: &str,
    par: &Executor,
    workload: impl Fn(&Executor) -> R,
) -> SweepTiming {
    let serial = Executor::serial();
    let mut serial_result = None;
    let serial_ms = time_ms(|| serial_result = Some(workload(&serial)));
    let mut parallel_result = None;
    let parallel_ms = time_ms(|| parallel_result = Some(workload(par)));
    assert!(
        serial_result == parallel_result,
        "{figure}: parallel result diverged from serial"
    );
    SweepTiming {
        figure: figure.to_string(),
        serial_ms,
        parallel_ms,
    }
}

fn main() {
    dvafs_bench::banner("BENCH sweep", "serial vs parallel wall time per figure");
    let args = dvafs_bench::BenchArgs::parse();
    let par = args.executor();

    let samples = if args.fast { 1024 } else { 2000 };
    let sweep = MultiplierSweep::new().with_samples(samples);
    let fig8 = Fig8Sweep::new(EnvisionChip::new());
    let chip = EnvisionChip::new();

    // The Fig. 6 stand-in: the LeNet-5 per-layer precision search at the
    // `--fast` scale of the fig6 binary (the heaviest parallelized path).
    let mut lenet = models::lenet5(dvafs_bench::EXPERIMENT_SEED);
    let digits = SyntheticDataset::digits(
        if args.fast { 12 } else { 24 },
        dvafs_bench::EXPERIMENT_SEED + 1,
    );
    if prediction_diversity(&lenet, &digits) < 3 {
        lenet.calibrate_logits(&digits);
    }
    let search = PrecisionSearch::new();

    let timings = vec![
        measure("fig2", &par, |e| {
            sweep.clone().with_executor(e.clone()).fig2()
        }),
        measure("fig3a", &par, |e| {
            sweep.clone().with_executor(e.clone()).fig3a()
        }),
        measure("fig3b", &par, |e| {
            sweep.clone().with_executor(e.clone()).fig3b()
        }),
        measure("fig6", &par, |e| {
            let w = search.search_with(&lenet, &digits, Operand::Weights, e);
            let a = search.search_with(&lenet, &digits, Operand::Activations, e);
            (w, a)
        }),
        measure("fig8", &par, |e| {
            let s = fig8.clone().with_executor(e.clone());
            (s.fig8a(), s.fig8b())
        }),
        measure("table3", &par, |e| table3_with(&chip, e)),
    ];

    for t in &timings {
        println!(
            "measured {}: serial and parallel runs bit-identical",
            t.figure
        );
    }

    let path = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    std::fs::write(path, bench_sweep_json(&timings, par.threads(), args.fast))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!();
    println!("wrote {path}");
}
