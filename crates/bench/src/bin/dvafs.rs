//! The single experiment CLI over the scenario registry: `dvafs list`,
//! `dvafs run <id>... [--format text|json|csv] [--out DIR] [--threads N]
//! [--fast]`, `dvafs run --all`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dvafs_bench::cli::main_with_args(&args));
}
