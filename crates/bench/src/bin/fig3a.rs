//! Regenerates Fig. 3a: energy per word of the reconfigurable multiplier
//! in DAS, DVAS and DVAFS regimes, normalized to the non-reconfigurable
//! 16-bit baseline (2.16 pJ/word in 40 nm LP).

use dvafs::report::{fmt_f, TextTable};
use dvafs::sweep::MultiplierSweep;
use dvafs_tech::scaling::ScalingMode;

fn main() {
    dvafs_bench::banner("Fig. 3a", "multiplier energy/word vs precision");
    let args = dvafs_bench::BenchArgs::parse();
    let sweep = MultiplierSweep::new().with_executor(args.executor());
    let samples = sweep.fig3a();

    let mut t = TextTable::new(vec!["mode", "bits", "E/word [rel]", "E/word [pJ]"]);
    for s in &samples {
        t.row(vec![
            s.mode.to_string(),
            format!("{}b", s.bits),
            fmt_f(s.relative, 4),
            fmt_f(s.picojoules, 3),
        ]);
    }
    println!("{t}");

    let e16 = samples
        .iter()
        .find(|s| s.mode == ScalingMode::Dvafs && s.bits == 16)
        .expect("16b sample present");
    let e4 = samples
        .iter()
        .find(|s| s.mode == ScalingMode::Dvafs && s.bits == 4)
        .expect("4b sample present");
    println!(
        "reconfiguration overhead at 16b: {:.0}% (paper: 21%, 2.63 pJ vs 2.16 pJ)",
        (e16.relative - 1.0) * 100.0
    );
    println!(
        "DVAFS saving at 4x4b vs baseline: {:.1}% (paper: >95%)",
        (1.0 - e4.relative) * 100.0
    );
    println!(
        "multiplier dynamic range 16b -> 4b: {:.1}x (paper: ~20x)",
        e16.relative / e4.relative
    );
}
