//! Fig. 3a: multiplier energy/word vs precision — see `dvafs run fig3a`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig3a");
}
