//! Fig. 4: SIMD processor energy/word vs precision — see `dvafs run fig4`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig4");
}
