//! Regenerates Fig. 4: energy per word of the SIMD processor (lanes +
//! memory) vs precision at constant throughput, for SW = 8 and SW = 64.

use dvafs::report::{fmt_f, TextTable};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;

fn main() {
    dvafs_bench::banner(
        "Fig. 4",
        "SIMD processor energy/word vs precision @ constant T",
    );
    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(25, 2048, dvafs_bench::EXPERIMENT_SEED);

    let mut t = TextTable::new(vec!["SW", "mode", "16b", "12b", "8b", "4b"]);
    for sw in [8usize, 64] {
        // Baseline: the same-width processor at 1x16b.
        let base = Processor::with_model(
            ProcConfig::new(sw, ScalingMode::Das, 16).expect("valid config"),
            model.clone(),
        )
        .run_kernel(&kernel)
        .expect("kernel runs")
        .energy_per_word();
        for mode in ScalingMode::ALL {
            let series: Vec<String> = [16u32, 12, 8, 4]
                .iter()
                .map(|&bits| {
                    let cfg = ProcConfig::new(sw, mode, bits).expect("valid config");
                    let r = Processor::with_model(cfg, model.clone())
                        .run_kernel(&kernel)
                        .expect("kernel runs");
                    assert!(r.outputs_match(&kernel), "outputs must stay bit-exact");
                    fmt_f(r.energy_per_word() / base, 3)
                })
                .collect();
            let mut cells = vec![sw.to_string(), mode.to_string()];
            cells.extend(series);
            t.row(cells);
        }
    }
    println!("{t}");
    println!("(energy relative to the same-SW 1x16b processor at 500 MHz)");
    println!("paper anchors: DVAFS reaches ~0.15 (85% saving) at 4x4b; DAS/DVAS stop near");
    println!("0.40-0.55 because decode and memory do not scale; SW=64 gains more in DVAS,");
    println!("while DVAFS is strong even at SW=8.");
}
