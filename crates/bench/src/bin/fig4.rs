//! Regenerates Fig. 4: energy per word of the SIMD processor (lanes +
//! memory) vs precision at constant throughput, for SW = 8 and SW = 64.

use dvafs::report::{fmt_f, TextTable};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::scaling::ScalingMode;

fn main() {
    dvafs_bench::banner(
        "Fig. 4",
        "SIMD processor energy/word vs precision @ constant T",
    );
    let args = dvafs_bench::BenchArgs::parse();
    let exec = args.executor();
    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(25, 2048, dvafs_bench::EXPERIMENT_SEED);

    // The full evaluation grid, row-major as the table prints it. Each
    // cell simulates the whole kernel, so cells run in parallel and merge
    // in grid order (the 1x16b DAS cell — cell 0 of each SW block by
    // `precision_grid`'s contract — doubles as the SW's baseline).
    let grid: Vec<(usize, ScalingMode, u32)> = [8usize, 64]
        .into_iter()
        .flat_map(|sw| {
            ScalingMode::precision_grid()
                .into_iter()
                .map(move |(mode, b)| (sw, mode, b))
        })
        .collect();
    let energies = exec.par_map_indexed(&grid, |_, &(sw, mode, bits)| {
        let cfg = ProcConfig::new(sw, mode, bits).expect("valid config");
        let r = Processor::with_model(cfg, model.clone())
            .run_kernel(&kernel)
            .expect("kernel runs");
        assert!(r.outputs_match(&kernel), "outputs must stay bit-exact");
        r.energy_per_word()
    });

    let mut t = TextTable::new(vec!["SW", "mode", "16b", "12b", "8b", "4b"]);
    let cells_per_sw = ScalingMode::ALL.len() * ScalingMode::PRECISIONS.len();
    for (s, sw) in [8usize, 64].into_iter().enumerate() {
        // Baseline: the same-width processor at 1x16b (DAS is grid row 0).
        let base = energies[s * cells_per_sw];
        for (m, mode) in ScalingMode::ALL.into_iter().enumerate() {
            let row = s * cells_per_sw + m * 4;
            let series: Vec<String> = energies[row..row + 4]
                .iter()
                .map(|&e| fmt_f(e / base, 3))
                .collect();
            let mut cells = vec![sw.to_string(), mode.to_string()];
            cells.extend(series);
            t.row(cells);
        }
    }
    println!("{t}");
    println!("(energy relative to the same-SW 1x16b processor at 500 MHz)");
    println!("paper anchors: DVAFS reaches ~0.15 (85% saving) at 4x4b; DAS/DVAS stop near");
    println!("0.40-0.55 because decode and memory do not scale; SW=64 gains more in DVAS,");
    println!("while DVAFS is strong even at SW=8.");
}
