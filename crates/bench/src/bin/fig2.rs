//! Regenerates Fig. 2: operating frequency (a), positive slack at the
//! nominal rail (b), supply voltage at zero slack (c) and relative
//! switching activity (d) of the DVAFS multiplier at constant 500 MOPS.

use dvafs::report::{fmt_f, TextTable};
use dvafs::sweep::MultiplierSweep;
use dvafs_tech::scaling::ScalingMode;

fn main() {
    dvafs_bench::banner("Fig. 2", "f, slack, V and activity vs precision @ 500 MOPS");
    let args = dvafs_bench::BenchArgs::parse();
    let sweep = MultiplierSweep::new().with_executor(args.executor());
    let points = sweep.fig2();

    for (label, metric) in [
        ("Fig. 2a  Operating frequency [MHz]", 0usize),
        ("Fig. 2b  Positive slack @1.1V [ns]", 1),
        ("Fig. 2c  Supply voltage Vas @0 slack [V]", 2),
        ("Fig. 2d  Relative activity per word [-]", 3),
    ] {
        println!("{label}");
        let mut t = TextTable::new(vec!["mode", "16b", "12b", "8b", "4b"]);
        for mode in ScalingMode::ALL {
            let series: Vec<String> = points
                .iter()
                .filter(|p| p.mode == mode)
                .map(|p| match metric {
                    0 => fmt_f(p.frequency_mhz, 0),
                    1 => fmt_f(p.positive_slack_ns, 2),
                    2 => fmt_f(p.v_as, 2),
                    _ => fmt_f(p.activity_per_word, 3),
                })
                .collect();
            let mut cells = vec![mode.to_string()];
            cells.extend(series);
            t.row(cells);
        }
        println!("{t}");
    }
    println!("paper anchors: DVAFS f = 500/500/250/125 MHz; DAS slack ~1 ns @4b;");
    println!("DVAFS slack ~7 ns @4x4b; DVAS V -> 0.9 V; DVAFS V -> 0.75 V;");
    println!("activity drop 12.5x (DAS) and 3.2x per cycle (DVAFS) at 4b.");
}
