//! Fig. 2: f, slack, V and activity vs precision — see `dvafs run fig2`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig2");
}
