//! Regenerates Fig. 8: Envision's relative energy per operation at
//! (a) constant 200 MHz and (b) constant 76 GOPS throughput.

use dvafs::report::{fmt_f, TextTable};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::Fig8Sweep;
use dvafs_tech::scaling::ScalingMode;

fn main() {
    dvafs_bench::banner("Fig. 8", "Envision energy/op at constant f and constant T");
    let args = dvafs_bench::BenchArgs::parse();
    let sweep = Fig8Sweep::new(EnvisionChip::new()).with_executor(args.executor());

    for (label, samples) in [
        ("Fig. 8a  constant f = 200 MHz", sweep.fig8a()),
        ("Fig. 8b  constant T = 76 GOPS", sweep.fig8b()),
    ] {
        println!("{label}");
        let mut t = TextTable::new(vec![
            "mode",
            "bits",
            "f [MHz]",
            "V [V]",
            "P [mW]",
            "E/op [rel]",
        ]);
        for s in &samples {
            t.row(vec![
                s.mode.to_string(),
                format!("{}b", s.bits),
                fmt_f(s.f_mhz, 0),
                fmt_f(s.v, 2),
                fmt_f(s.power_mw, 1),
                fmt_f(s.energy_rel, 3),
            ]);
        }
        println!("{t}");
        let gain = |m: ScalingMode| {
            let e16 = samples
                .iter()
                .find(|s| s.mode == ScalingMode::Das && s.bits == 16)
                .expect("baseline present")
                .energy_rel;
            let e4 = samples
                .iter()
                .find(|s| s.mode == m && s.bits == 4)
                .expect("4b point present")
                .energy_rel;
            e16 / e4
        };
        println!(
            "16b -> 4b gains: DAS {:.1}x | DVAS {:.1}x | DVAFS {:.1}x",
            gain(ScalingMode::Das),
            gain(ScalingMode::Dvas),
            gain(ScalingMode::Dvafs)
        );
        println!();
    }
    println!("paper anchors: 300 mW @16b/200MHz (0.25 TOPS/W real); 2.4x (DAS) and 3.8x");
    println!("(DVAS) at constant f; 104-108 mW @4x4b/200MHz (2.8 TOPS/W); 18 mW @4x4b/50MHz");
    println!("(4.2 TOPS/W) — 6.9x/4.1x better than DAS/DVAS at constant throughput.");
}
