//! Fig. 8: Envision energy/op at constant f and constant T — see `dvafs run fig8`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig8");
}
