//! Table I: D(V)A(F)S parameters of the multiplier — see `dvafs run table1`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("table1");
}
