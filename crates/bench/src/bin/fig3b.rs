//! Regenerates Fig. 3b: relative energy vs product RMSE for DVAFS against
//! the approximate-multiplier baselines \[3\], \[3\]+VS, \[4\], \[5\] and \[8\].

use dvafs::report::{fmt_e, fmt_f, TextTable};
use dvafs::sweep::MultiplierSweep;

fn main() {
    dvafs_bench::banner(
        "Fig. 3b",
        "energy vs RMSE: DVAFS against [3], [4], [5], [8]",
    );
    let args = dvafs_bench::BenchArgs::parse();
    let sweep = MultiplierSweep::new().with_executor(args.executor());
    let mut points = sweep.fig3b();
    points.sort_by(|a, b| {
        a.design
            .cmp(&b.design)
            .then(a.rmse.partial_cmp(&b.rmse).expect("finite"))
    });

    let mut t = TextTable::new(vec!["design", "RMSE [-]", "relative energy [-]"]);
    for p in &points {
        t.row(vec![p.design.clone(), fmt_e(p.rmse), fmt_f(p.energy, 3)]);
    }
    println!("{t}");
    println!("expected shape (paper): DVAFS dominates below ~1e-4 RMSE; the programmable");
    println!("truncated multiplier [8] is the closest competitor at high accuracy; [3]-[5]");
    println!("are fixed design points with higher energy at matched accuracy.");
}
