//! Fig. 3b: energy vs RMSE against the approximate baselines — see `dvafs run fig3b`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig3b");
}
