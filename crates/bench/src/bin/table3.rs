//! Regenerates Table III: per-layer power and efficiency of VGG16,
//! AlexNet and LeNet-5 on Envision, with sparsity and DVAFS scaling.

use dvafs::report::{fmt_f, TextTable};
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::measure::table3_with;

fn main() {
    dvafs_bench::banner(
        "Table III",
        "per-layer power on Envision (sparsity + DVAFS)",
    );
    let args = dvafs_bench::BenchArgs::parse();
    let chip = EnvisionChip::new();
    let summaries = table3_with(&chip, &args.executor());

    // Paper totals for comparison: (name, P mW, TOPS/W, fps).
    let paper_totals = [
        ("VGG16", 26.0, 2.0, 3.3),
        ("AlexNet", 44.0, 1.8, 47.0),
        ("LeNet-5", 25.0, 3.0, 13000.0),
    ];

    for s in &summaries {
        println!("{} ({:.1} MMACs/frame)", s.name, s.total_mmacs);
        let mut t = TextTable::new(vec![
            "layer", "mode", "f[MHz]", "V[V]", "wght[b]", "in[b]", "wsp%", "isp%", "MMACs",
            "P[mW]", "TOPS/W",
        ]);
        for r in &s.rows {
            let l = &r.layer;
            t.row(vec![
                l.name.clone(),
                l.mode.to_string(),
                fmt_f(l.f_mhz, 0),
                fmt_f(r.v, 2),
                l.weight_bits.to_string(),
                l.input_bits.to_string(),
                fmt_f(l.weight_sparsity * 100.0, 0),
                fmt_f(l.input_sparsity * 100.0, 0),
                fmt_f(l.mmacs_per_frame, 1),
                fmt_f(r.power_mw, 1),
                fmt_f(r.tops_per_w, 1),
            ]);
        }
        println!("{t}");
        let p = paper_totals
            .iter()
            .find(|(n, ..)| *n == s.name)
            .expect("paper totals exist");
        println!(
            "total: P = {:.1} mW (paper {:.0}), eff = {:.1} TOPS/W (paper {:.1}), {:.1} fps (paper {})",
            s.avg_power_mw, p.1, s.avg_tops_per_w, p.2, s.fps, p.3
        );
        println!();
    }
    println!("(per-layer modes, precisions and sparsities follow the published table; power");
    println!(" and efficiency are produced by the calibrated chip model)");
}
