//! Table II: SIMD power split — see `dvafs run table2`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("table2");
}
