//! Fig. 6: per-layer CNN quantization at 99% relative accuracy — see `dvafs run fig6`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("fig6");
}
