//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Operand isolation** in the subword multiplier — gating operands
//!    before the partial-product cells (vs. killing products afterwards)
//!    is what reaches the paper's `k3` activity reduction.
//! 2. **Optimized sign extension** in the Booth–Wallace multiplier — the
//!    inverted-bit + constant scheme vs. naive sign-bit replication, which
//!    keeps high columns toggling under input gating (`k0`).
//! 3. **Voltage-rail quantization** — how much of the DVAFS energy win a
//!    coarse power grid gives back.

use dvafs::report::{fmt_f, TextTable};
use dvafs_arith::multiplier::dvafs::{
    build_subword_multiplier, build_subword_multiplier_unisolated,
};
use dvafs_arith::multiplier::exact::{build_booth_wallace, build_booth_wallace_naive};
use dvafs_arith::multiplier::DvafsMultiplier;
use dvafs_arith::netlist::{to_bits, Netlist, Simulator};
use dvafs_arith::subword::SubwordMode;
use dvafs_tech::delay::DelayModel;
use dvafs_tech::voltage::VoltageSolver;
use rand::{Rng, SeedableRng};

fn drive_subword(netlist: &Netlist, mode: SubwordMode, pairs: &[(u16, u16)]) -> f64 {
    let mut sim = Simulator::new(netlist.clone());
    for &(a, b) in pairs {
        sim.eval(&DvafsMultiplier::stimulus(a, b, mode))
            .expect("stimulus fits");
    }
    sim.stats().weighted_toggles
}

fn drive_booth(netlist: &Netlist, bits: u32, pairs: &[(u16, u16)]) -> f64 {
    let drop = 16 - bits;
    let mut sim = Simulator::new(netlist.clone());
    for &(a, b) in pairs {
        // Gate LSBs as a DAS data path does (arithmetic truncation).
        let aq = ((a as i16 >> drop) << drop) as u16;
        let bq = ((b as i16 >> drop) << drop) as u16;
        let mut inputs = to_bits(u64::from(aq), 16);
        inputs.extend(to_bits(u64::from(bq), 16));
        sim.eval(&inputs).expect("stimulus fits");
    }
    sim.stats().weighted_toggles
}

fn main() {
    dvafs_bench::banner(
        "Ablations",
        "design choices behind the extracted parameters",
    );
    let args = dvafs_bench::BenchArgs::parse();
    let exec = args.executor();
    let mut rng = rand::rngs::StdRng::seed_from_u64(dvafs_bench::EXPERIMENT_SEED);
    let pairs: Vec<(u16, u16)> = (0..150).map(|_| (rng.gen(), rng.gen())).collect();

    // 1. Operand isolation in the subword multiplier.
    println!("1. Operand isolation (subword multiplier, per-cycle activity vs 1x16b)");
    let isolated = build_subword_multiplier();
    let unisolated = build_subword_multiplier_unisolated();
    let modes = [
        (SubwordMode::X1, 1.0),
        (SubwordMode::X2, 1.0 / 1.82),
        (SubwordMode::X4, 1.0 / 3.2),
    ];
    // Each toggle simulation is independent: drive both designs at every
    // mode in parallel, design-major so row m reads [m] and [3 + m].
    let sub_grid: Vec<(&Netlist, SubwordMode)> = [&isolated, &unisolated]
        .into_iter()
        .flat_map(|n| modes.iter().map(move |&(m, _)| (n, m)))
        .collect();
    let toggles = exec.par_map_indexed(&sub_grid, |_, &(n, m)| drive_subword(n, m, &pairs));
    let (base_iso, base_un) = (toggles[0], toggles[3]);
    let mut t = TextTable::new(vec!["mode", "isolated", "unisolated", "paper k3 target"]);
    for (m, (mode, paper)) in modes.into_iter().enumerate() {
        t.row(vec![
            mode.to_string(),
            fmt_f(toggles[m] / base_iso, 3),
            fmt_f(toggles[3 + m] / base_un, 3),
            fmt_f(paper, 3),
        ]);
    }
    println!("{t}");

    // 2. Sign-extension scheme in the Booth-Wallace multiplier.
    println!("2. Sign-extension scheme (Booth-Wallace, DAS activity vs 16b)");
    let optimized = build_booth_wallace(16);
    let naive = build_booth_wallace_naive(16);
    let booth_grid: Vec<(&Netlist, u32)> = [&optimized, &naive]
        .into_iter()
        .flat_map(|n| [16u32, 12, 8, 4].into_iter().map(move |b| (n, b)))
        .collect();
    let booth = exec.par_map_indexed(&booth_grid, |_, &(n, b)| drive_booth(n, b, &pairs));
    // Both columns normalized to the OPTIMIZED design's 16-bit activity so
    // the absolute switched-capacitance cost of naive replication shows.
    let b_opt = booth[0];
    let mut t = TextTable::new(vec!["precision", "optimized", "naive replication"]);
    for (i, bits) in [16u32, 12, 8, 4].into_iter().enumerate() {
        t.row(vec![
            format!("{bits}b"),
            fmt_f(booth[i] / b_opt, 3),
            fmt_f(booth[4 + i] / b_opt, 3),
        ]);
    }
    println!("{t}");
    println!(
        "(cells: optimized {} vs naive {})",
        optimized.gate_count(),
        naive.gate_count()
    );
    println!();

    // 3. Voltage-rail quantization.
    println!("3. Rail quantization: DVAFS 4x4b energy factor vs grid step");
    let model = DelayModel::calibrate(1.1, &[(0.9, 2.0), (0.75, 8.0)]).expect("calibrates");
    let mut t = TextTable::new(vec!["step [V]", "V(8x slack)", "(V/Vnom)^2"]);
    for step in [0.005f64, 0.01, 0.05, 0.10] {
        let solver = VoltageSolver::new(model, 0.70, step);
        let v = solver.min_voltage(8.0);
        t.row(vec![
            fmt_f(step, 3),
            fmt_f(v, 3),
            fmt_f((v / 1.1) * (v / 1.1), 3),
        ]);
    }
    println!("{t}");
    println!("a 0.1 V grid gives back ~15-25% of the voltage-scaling energy win,");
    println!("which is why split rails with fine steps matter in a DVAFS system.");
}
