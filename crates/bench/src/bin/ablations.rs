//! Design-choice ablation studies — see `dvafs run ablations`.
//!
//! Legacy shim: the experiment lives in the scenario registry
//! (`dvafs::scenario`); this binary only preserves the original command
//! line and its byte-identical stdout.

fn main() {
    dvafs_bench::run_legacy("ablations");
}
