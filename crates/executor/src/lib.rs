//! # dvafs-executor — deterministic parallel sweep execution
//!
//! Every sweep behind the paper's figures is a map over an index space
//! (designs × precisions, Monte-Carlo chunks, CNN layers, dataset samples).
//! [`Executor::par_map_indexed`] runs such maps on a scoped-`std::thread`
//! work pool and merges the results **in index order**, so the output is
//! bit-identical to a serial run regardless of thread count or scheduling.
//!
//! Two rules make that guarantee hold, and every caller in this workspace
//! follows them:
//!
//! 1. **Partitioning is part of the problem, not the executor.** Work items
//!    (e.g. Monte-Carlo chunks) are defined by *index*, never by "whatever
//!    share a thread happens to grab". Seeds derive from the root seed plus
//!    the item index.
//! 2. **Merging is sequential and index-ordered.** Each item's result is
//!    computed independently; any cross-item reduction (sums of partial
//!    RMSE, energy totals) happens after the join, in index order, on one
//!    thread.
//!
//! Threads claim items dynamically from a shared atomic cursor (a
//! single-queue work-stealing discipline), so unequal item costs — a deep
//! per-layer precision scan next to a shallow one — still balance. The pool
//! is scoped: workers borrow the caller's data and are joined before
//! `par_map_indexed` returns, so no `'static` bounds leak into sweep code.
//!
//! There is deliberately no dependency on `rayon` (the build is offline;
//! see `vendor/`): `std::thread::scope` plus an atomic cursor is all the
//! machinery the workspace needs.
//!
//! ## Example
//!
//! ```
//! use dvafs_executor::Executor;
//!
//! let serial = Executor::serial();
//! let pool = Executor::new(4);
//! let squares = |e: &Executor| e.par_map_range(100, |i| (i * i) as u64);
//! assert_eq!(squares(&serial), squares(&pool)); // bit-identical
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "DVAFS_THREADS";

/// A deterministic parallel map executor over a fixed worker count.
///
/// Cloning is cheap (the worker count is the only state); the scoped pool
/// is created per call, so an `Executor` can be embedded in any sweep
/// object without lifetime or poisoning concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor: `par_map_indexed` degenerates to a plain
    /// in-order `map` on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// The default executor: `DVAFS_THREADS` if set and parseable,
    /// otherwise the host's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(Self::host_parallelism);
        Executor::new(threads)
    }

    /// The host's available parallelism (≥ 1; falls back to 1 when the OS
    /// cannot report it).
    #[must_use]
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// The worker count this executor runs with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this executor runs on the calling thread only.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, in parallel, returning results in item order.
    ///
    /// `f` receives `(index, &item)` so work can derive per-item seeds from
    /// the index. The output `Vec` is ordered by index — **not** by
    /// completion — which is what makes parallel output bit-identical to
    /// serial output for any pure `f`.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (workers drain the
    /// remaining items without executing them).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let buckets = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut bucket: Vec<(usize, R)> = Vec::new();
                        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n || poisoned.load(Ordering::Relaxed) != 0 {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                                Ok(r) => bucket.push((i, r)),
                                Err(p) => {
                                    poisoned.store(1, Ordering::Relaxed);
                                    panic = Some(p);
                                    break;
                                }
                            }
                        }
                        (bucket, panic)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker cannot itself panic"))
                .collect::<Vec<_>>()
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (bucket, panic) in buckets {
            if let Some(p) = panic {
                resume_unwind(p);
            }
            for (i, r) in bucket {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index claimed exactly once"))
            .collect()
    }

    /// Maps `f` over the index range `0..n`, in parallel, returning results
    /// in index order. Convenience wrapper over [`par_map_indexed`] for
    /// sweeps whose items *are* their indices (Monte-Carlo chunk numbers,
    /// dataset sample positions).
    ///
    /// [`par_map_indexed`]: Self::par_map_indexed
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let indices: Vec<usize> = (0..n).collect();
        self.par_map_indexed(&indices, |_, &i| f(i))
    }

    /// Fallibly maps `f` over `items` in parallel. Every item is evaluated
    /// (errors do not short-circuit the in-flight map — deliberately, so
    /// the error returned is deterministic rather than a race winner), then
    /// the lowest-indexed error is selected, matching what a serial
    /// `collect::<Result<_, _>>()` would surface.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item.
    pub fn try_par_map_indexed<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.par_map_indexed(items, f).into_iter().collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        let exec = Executor::new(8);
        let items: Vec<usize> = (0..1000).collect();
        let out = exec.par_map_indexed(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bitwise_for_float_work() {
        // A float pipeline sensitive to evaluation order if the executor
        // merged in completion order.
        let work = |i: usize| {
            let x = (i as f64).sin() * 1e-3 + (i as f64).sqrt();
            x.powf(1.5) / (i as f64 + 1.0)
        };
        let serial: Vec<f64> = Executor::serial().par_map_range(500, work);
        for threads in [2, 3, 4, 7, 16] {
            let par = Executor::new(threads).par_map_range(500, work);
            assert_eq!(
                serial.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn unbalanced_items_all_complete() {
        let exec = Executor::new(4);
        let spent = AtomicU64::new(0);
        // Item 0 is ~100x the work of the rest: claiming must rebalance.
        let out = exec.par_map_range(64, |i| {
            let reps = if i == 0 { 40_000 } else { 400 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            spent.fetch_add(1, Ordering::Relaxed);
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(spent.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_single_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = vec![];
        assert!(exec.par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.par_map_indexed(&[7u32], |_, &x| x + 1), vec![8]);
        assert_eq!(exec.par_map_range(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert!(Executor::new(0).is_serial());
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let exec = Executor::new(4);
        let items: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> =
            exec.try_par_map_indexed(&items, |_, &x| if x % 30 == 17 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(17));
        let ok: Result<Vec<usize>, usize> = exec.try_par_map_indexed(&items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panics_propagate() {
        let exec = Executor::new(4);
        let _ = exec.par_map_range(64, |i| {
            if i == 13 {
                panic!("boom at 13");
            }
            i
        });
    }

    #[test]
    fn from_env_and_host_parallelism_are_sane() {
        assert!(Executor::host_parallelism() >= 1);
        assert!(Executor::from_env().threads() >= 1);
    }
}
