//! # dvafs-executor — deterministic parallel sweep execution
//!
//! Every sweep behind the paper's figures is a map over an index space
//! (designs × precisions, Monte-Carlo chunks, CNN layers, dataset samples).
//! [`Executor::par_map_indexed`] runs such maps on a scoped-`std::thread`
//! work pool and merges the results **in index order**, so the output is
//! bit-identical to a serial run regardless of thread count or scheduling.
//!
//! Two rules make that guarantee hold, and every caller in this workspace
//! follows them:
//!
//! 1. **Partitioning is part of the problem, not the executor.** Work items
//!    (e.g. Monte-Carlo chunks) are defined by *index*, never by "whatever
//!    share a thread happens to grab". Seeds derive from the root seed plus
//!    the item index.
//! 2. **Merging is sequential and index-ordered.** Each item's result is
//!    computed independently; any cross-item reduction (sums of partial
//!    RMSE, energy totals) happens after the join, in index order, on one
//!    thread.
//!
//! Threads claim items dynamically from a shared atomic cursor (a
//! single-queue work-stealing discipline), so unequal item costs — a deep
//! per-layer precision scan next to a shallow one — still balance. The pool
//! is scoped: workers borrow the caller's data and are joined before
//! `par_map_indexed` returns, so no `'static` bounds leak into sweep code.
//!
//! There is deliberately no dependency on `rayon` (the build is offline;
//! see `vendor/`): `std::thread::scope` plus an atomic cursor is all the
//! machinery the workspace needs.
//!
//! ## Example
//!
//! ```
//! use dvafs_executor::Executor;
//!
//! let serial = Executor::serial();
//! let pool = Executor::new(4);
//! let squares = |e: &Executor| e.par_map_range(100, |i| (i * i) as u64);
//! assert_eq!(squares(&serial), squares(&pool)); // bit-identical
//! ```

#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "DVAFS_THREADS";

/// What [`Executor::pipeline_ordered_policy`] does when a task panics.
///
/// [`Propagate`](PanicPolicy::Propagate) is the default and the retained
/// oracle: a panicking task tears down the pipeline and the panic resumes
/// on the caller, exactly as [`Executor::pipeline_ordered`] always
/// behaved. [`Isolate`](PanicPolicy::Isolate) is the serving posture: the
/// panic is contained to its task, surfaced to `consume` as
/// [`Err(TaskPanic)`](TaskPanic) **in item order**, and every other item
/// — earlier, later, in flight — is processed as if the faulted task had
/// returned normally. Panics raised by `consume` itself always propagate
/// under either policy (the consumer runs on the caller's thread and
/// owns the output stream; nothing can answer for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PanicPolicy {
    /// Tear down the pipeline and re-raise the first task panic on the
    /// caller (the historical behavior, kept as the oracle).
    #[default]
    Propagate,
    /// Contain a task panic to its item: `consume` receives
    /// `Err(TaskPanic)` at that item's position and the stream continues.
    Isolate,
}

/// A contained task panic, delivered in item order under
/// [`PanicPolicy::Isolate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The item index whose task panicked.
    pub seq: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case: `panic!`, `assert!`, `expect`); a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.seq, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves a raw `DVAFS_THREADS` value to a worker count.
///
/// Returns the chosen count plus a warning message when the value was
/// present but invalid (empty, unparseable, or zero — the same values
/// `--threads` hard-errors on). The pure form exists so both the `unset`
/// and `invalid` paths are unit-testable without touching process
/// environment state.
#[must_use]
pub fn threads_from_env_value(value: Option<&str>) -> (usize, Option<String>) {
    match value {
        None => (Executor::host_parallelism(), None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => (n, None),
            _ => (
                Executor::host_parallelism(),
                Some(format!(
                    "ignoring invalid {THREADS_ENV}={raw:?} (want a positive \
                     integer); using host parallelism"
                )),
            ),
        },
    }
}

/// A deterministic parallel map executor over a fixed worker count.
///
/// Cloning is cheap (the worker count is the only state); the scoped pool
/// is created per call, so an `Executor` can be embedded in any sweep
/// object without lifetime or poisoning concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor with an explicit worker count (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor: `par_map_indexed` degenerates to a plain
    /// in-order `map` on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// The default executor: `DVAFS_THREADS` if set and valid, otherwise
    /// the host's available parallelism.
    ///
    /// An invalid value (unparseable, or `0` — which `--threads 0`
    /// hard-errors on in the CLI) is **rejected, not coerced**: the
    /// executor falls back to host parallelism and says so on stderr, so
    /// a typo in the environment never silently serializes a sweep or
    /// silently picks a worker count the caller did not ask for.
    #[must_use]
    pub fn from_env() -> Self {
        let var = std::env::var(THREADS_ENV).ok();
        let (threads, warning) = threads_from_env_value(var.as_deref());
        if let Some(w) = warning {
            eprintln!("dvafs-executor: {w}");
        }
        Executor::new(threads)
    }

    /// The host's available parallelism (≥ 1; falls back to 1 when the OS
    /// cannot report it).
    #[must_use]
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// The worker count this executor runs with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this executor runs on the calling thread only.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, in parallel, returning results in item order.
    ///
    /// `f` receives `(index, &item)` so work can derive per-item seeds from
    /// the index. The output `Vec` is ordered by index — **not** by
    /// completion — which is what makes parallel output bit-identical to
    /// serial output for any pure `f`.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (workers drain the
    /// remaining items without executing them).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let buckets = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut bucket: Vec<(usize, R)> = Vec::new();
                        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n || poisoned.load(Ordering::Relaxed) != 0 {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                                Ok(r) => bucket.push((i, r)),
                                Err(p) => {
                                    poisoned.store(1, Ordering::Relaxed);
                                    panic = Some(p);
                                    break;
                                }
                            }
                        }
                        (bucket, panic)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker cannot itself panic"))
                .collect::<Vec<_>>()
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (bucket, panic) in buckets {
            if let Some(p) = panic {
                resume_unwind(p);
            }
            for (i, r) in bucket {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index claimed exactly once"))
            .collect()
    }

    /// Maps `f` over the index range `0..n`, in parallel, returning results
    /// in index order. Convenience wrapper over [`par_map_indexed`] for
    /// sweeps whose items *are* their indices (Monte-Carlo chunk numbers,
    /// dataset sample positions).
    ///
    /// [`par_map_indexed`]: Self::par_map_indexed
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let indices: Vec<usize> = (0..n).collect();
        self.par_map_indexed(&indices, |_, &i| f(i))
    }

    /// Fallibly maps `f` over `items` in parallel. Every item is evaluated
    /// (errors do not short-circuit the in-flight map — deliberately, so
    /// the error returned is deterministic rather than a race winner), then
    /// the lowest-indexed error is selected, matching what a serial
    /// `collect::<Result<_, _>>()` would surface.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item.
    pub fn try_par_map_indexed<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.par_map_indexed(items, f).into_iter().collect()
    }

    /// Streams `items` through `f` on the worker pool and hands each
    /// result to `consume` **in item order**, holding at most `capacity`
    /// items in flight — the bounded-queue building block behind
    /// `dvafs serve`.
    ///
    /// Unlike [`par_map_indexed`](Self::par_map_indexed) the input is a
    /// (possibly blocking, possibly unbounded) iterator rather than a
    /// slice, and results are consumed as they become ready instead of
    /// being collected: item *k*+1 can be computing while item *k*'s
    /// result is being written out. Three properties hold for any thread
    /// count:
    ///
    /// * **Order.** `consume` sees results in item order — never
    ///   completion order — so for a pure `f` the consumed stream is
    ///   bit-identical to the serial `for` loop.
    /// * **Backpressure.** The producer stops pulling the iterator while
    ///   `capacity` items are claimed-or-queued but not yet consumed
    ///   (capacity is clamped to ≥ 1), so a slow consumer bounds memory
    ///   and a blocking iterator (a socket) never races ahead.
    /// * **Liveness.** The iterator is only ever pulled *outside* the
    ///   internal locks, so an iterator that blocks on I/O stalls neither
    ///   workers nor the consumer of already-claimed items.
    ///
    /// `consume` runs on the calling thread. Returns the number of items
    /// processed.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` or `consume`
    /// (remaining claimed items are drained without executing `f`).
    pub fn pipeline_ordered<T, R, I, F, C>(
        &self,
        capacity: usize,
        items: I,
        f: F,
        mut consume: C,
    ) -> usize
    where
        T: Send,
        R: Send,
        I: Iterator<Item = T> + Send,
        F: Fn(usize, T) -> R + Sync,
        C: FnMut(usize, R),
    {
        self.pipeline_ordered_policy(PanicPolicy::Propagate, capacity, items, f, |i, r| {
            match r {
                Ok(r) => consume(i, r),
                // Propagate never delivers Err: the task panic resumed on
                // the caller before the consumer could see this item.
                Err(p) => unreachable!("contained panic under Propagate: {p}"),
            }
        })
    }

    /// [`pipeline_ordered`](Self::pipeline_ordered) with an explicit
    /// [`PanicPolicy`]: `consume` receives `Result<R, TaskPanic>` so that
    /// under [`PanicPolicy::Isolate`] a panicking task becomes an ordered,
    /// per-item `Err` instead of tearing down the pipeline — the fault
    /// containment `dvafs serve` is built on. Under
    /// [`PanicPolicy::Propagate`] the `Err` arm is never entered and the
    /// behavior is exactly `pipeline_ordered`.
    ///
    /// All three `pipeline_ordered` properties (order, backpressure,
    /// liveness) hold unchanged; under `Isolate` a faulted item occupies
    /// its queue slot like any other and its `Err` is consumed at the
    /// item's own position.
    ///
    /// # Panics
    ///
    /// Under `Propagate`, propagates the first panic raised inside `f`.
    /// Under either policy, propagates a panic raised by `consume`
    /// (remaining claimed items are drained without executing `f`).
    pub fn pipeline_ordered_policy<T, R, I, F, C>(
        &self,
        policy: PanicPolicy,
        capacity: usize,
        items: I,
        f: F,
        mut consume: C,
    ) -> usize
    where
        T: Send,
        R: Send,
        I: Iterator<Item = T> + Send,
        F: Fn(usize, T) -> R + Sync,
        C: FnMut(usize, Result<R, TaskPanic>),
    {
        let capacity = capacity.max(1);
        if self.threads == 1 {
            let mut n = 0usize;
            for item in items {
                let result = match policy {
                    PanicPolicy::Propagate => Ok(f(n, item)),
                    PanicPolicy::Isolate => {
                        catch_unwind(AssertUnwindSafe(|| f(n, item))).map_err(|p| TaskPanic {
                            seq: n,
                            message: panic_message(p.as_ref()),
                        })
                    }
                };
                consume(n, result);
                n += 1;
            }
            return n;
        }

        struct PipeState<R> {
            ready: std::collections::BTreeMap<usize, Result<R, TaskPanic>>,
            consumed: usize,
            total: Option<usize>,
            panic: Option<Box<dyn std::any::Any + Send>>,
        }
        let state = std::sync::Mutex::new(PipeState::<R> {
            ready: std::collections::BTreeMap::new(),
            consumed: 0,
            total: None,
            panic: None,
        });
        let ready_cv = std::sync::Condvar::new(); // consumer waits here
        let space_cv = std::sync::Condvar::new(); // producer waits here
        let poisoned = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
        let rx = std::sync::Mutex::new(rx);

        let mut processed = 0usize;
        std::thread::scope(|scope| {
            // Producer: pull the iterator outside every lock, gated on
            // `seq < consumed + capacity`.
            scope.spawn(|| {
                let mut items = items;
                let mut seq = 0usize;
                loop {
                    {
                        let mut st = state.lock().expect("pipeline state lock");
                        while poisoned.load(Ordering::Relaxed) == 0 && seq >= st.consumed + capacity
                        {
                            st = space_cv.wait(st).expect("pipeline state lock");
                        }
                    }
                    if poisoned.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                    match items.next() {
                        Some(item) => {
                            if tx.send((seq, item)).is_err() {
                                break;
                            }
                            seq += 1;
                        }
                        None => break,
                    }
                }
                let mut st = state.lock().expect("pipeline state lock");
                st.total = Some(seq);
                ready_cv.notify_all();
                drop(st);
                drop(tx);
            });

            // Workers: claim `(seq, item)` pairs, push results into the
            // reorder buffer.
            for _ in 0..self.threads {
                scope.spawn(|| loop {
                    let claimed = {
                        let guard = rx.lock().expect("pipeline claim lock");
                        guard.recv()
                    };
                    let Ok((seq, item)) = claimed else { break };
                    if poisoned.load(Ordering::Relaxed) != 0 {
                        continue; // drain without executing
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| f(seq, item)));
                    let mut st = state.lock().expect("pipeline state lock");
                    match result {
                        Ok(r) => {
                            st.ready.insert(seq, Ok(r));
                        }
                        Err(p) => match policy {
                            PanicPolicy::Propagate => {
                                poisoned.store(1, Ordering::Relaxed);
                                if st.panic.is_none() {
                                    st.panic = Some(p);
                                }
                            }
                            PanicPolicy::Isolate => {
                                st.ready.insert(
                                    seq,
                                    Err(TaskPanic {
                                        seq,
                                        message: panic_message(p.as_ref()),
                                    }),
                                );
                            }
                        },
                    }
                    ready_cv.notify_all();
                    space_cv.notify_all();
                });
            }

            // Consumer: the calling thread pops results in sequence order.
            let mut next = 0usize;
            loop {
                let result = {
                    let mut st = state.lock().expect("pipeline state lock");
                    loop {
                        if poisoned.load(Ordering::Relaxed) != 0 {
                            break None;
                        }
                        if let Some(r) = st.ready.remove(&next) {
                            st.consumed += 1;
                            space_cv.notify_all();
                            break Some(r);
                        }
                        if st.total == Some(next) {
                            break None;
                        }
                        st = ready_cv.wait(st).expect("pipeline state lock");
                    }
                };
                let Some(r) = result else { break };
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| consume(next, r))) {
                    let mut st = state.lock().expect("pipeline state lock");
                    poisoned.store(1, Ordering::Relaxed);
                    if st.panic.is_none() {
                        st.panic = Some(p);
                    }
                    space_cv.notify_all();
                    break;
                }
                next += 1;
            }
            processed = next;
        });

        let panic = state.lock().expect("pipeline state lock").panic.take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
        processed
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        let exec = Executor::new(8);
        let items: Vec<usize> = (0..1000).collect();
        let out = exec.par_map_indexed(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bitwise_for_float_work() {
        // A float pipeline sensitive to evaluation order if the executor
        // merged in completion order.
        let work = |i: usize| {
            let x = (i as f64).sin() * 1e-3 + (i as f64).sqrt();
            x.powf(1.5) / (i as f64 + 1.0)
        };
        let serial: Vec<f64> = Executor::serial().par_map_range(500, work);
        for threads in [2, 3, 4, 7, 16] {
            let par = Executor::new(threads).par_map_range(500, work);
            assert_eq!(
                serial.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn unbalanced_items_all_complete() {
        let exec = Executor::new(4);
        let spent = AtomicU64::new(0);
        // Item 0 is ~100x the work of the rest: claiming must rebalance.
        let out = exec.par_map_range(64, |i| {
            let reps = if i == 0 { 40_000 } else { 400 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            spent.fetch_add(1, Ordering::Relaxed);
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(spent.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_single_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = vec![];
        assert!(exec.par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.par_map_indexed(&[7u32], |_, &x| x + 1), vec![8]);
        assert_eq!(exec.par_map_range(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert!(Executor::new(0).is_serial());
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let exec = Executor::new(4);
        let items: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> =
            exec.try_par_map_indexed(&items, |_, &x| if x % 30 == 17 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(17));
        let ok: Result<Vec<usize>, usize> = exec.try_par_map_indexed(&items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panics_propagate() {
        let exec = Executor::new(4);
        let _ = exec.par_map_range(64, |i| {
            if i == 13 {
                panic!("boom at 13");
            }
            i
        });
    }

    #[test]
    fn from_env_and_host_parallelism_are_sane() {
        assert!(Executor::host_parallelism() >= 1);
        assert!(Executor::from_env().threads() >= 1);
    }

    #[test]
    fn env_value_resolution_accepts_positive_integers() {
        assert_eq!(threads_from_env_value(Some("3")), (3, None));
        assert_eq!(threads_from_env_value(Some(" 8 ")), (8, None));
        let (n, warn) = threads_from_env_value(None);
        assert_eq!(n, Executor::host_parallelism());
        assert!(warn.is_none());
    }

    #[test]
    fn env_value_resolution_rejects_invalid_values_with_warning() {
        // `0` used to clamp to 1 and garbage used to silently fall back;
        // both now fall back to host parallelism *and* warn, matching the
        // CLI's `--threads` validation instead of contradicting it.
        for bad in ["0", "", "  ", "lots", "-2", "3.5"] {
            let (n, warn) = threads_from_env_value(Some(bad));
            assert_eq!(n, Executor::host_parallelism(), "value {bad:?}");
            let warn = warn.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(warn.contains(THREADS_ENV), "{warn}");
            assert!(warn.contains(&format!("{bad:?}")), "{warn}");
        }
    }

    #[test]
    fn pipeline_consumes_in_order_and_matches_serial() {
        let work = |i: usize, x: u64| {
            // Uneven costs so completion order differs from item order.
            let reps = if i % 7 == 0 { 20_000 } else { 200 };
            let mut acc = x;
            for k in 0..reps {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            acc
        };
        let run = |threads: usize, capacity: usize| {
            let mut seen: Vec<(usize, u64)> = Vec::new();
            let n = Executor::new(threads).pipeline_ordered(
                capacity,
                (0..300u64).map(|x| x * 11),
                work,
                |i, r| seen.push((i, r)),
            );
            assert_eq!(n, 300);
            seen
        };
        let serial = run(1, 4);
        assert!(serial.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        for (threads, capacity) in [(2, 1), (3, 2), (4, 8), (8, 64)] {
            assert_eq!(
                run(threads, capacity),
                serial,
                "{threads} threads / capacity {capacity} diverged"
            );
        }
    }

    #[test]
    fn pipeline_bounds_in_flight_items() {
        // With capacity C, no item may be claimed more than C ahead of the
        // consumed watermark (the consumer here is deliberately slow).
        const CAPACITY: usize = 3;
        let consumed = AtomicU64::new(0);
        let max_lead = AtomicU64::new(0);
        Executor::new(6).pipeline_ordered(
            CAPACITY,
            0..200usize,
            |i, _| {
                let lead = i as u64 - consumed.load(Ordering::Relaxed);
                max_lead.fetch_max(lead, Ordering::Relaxed);
            },
            |_, ()| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                consumed.fetch_add(1, Ordering::Relaxed);
            },
        );
        // The pop-before-consume window allows exactly `capacity` of lead,
        // never more.
        assert!(
            max_lead.load(Ordering::Relaxed) <= CAPACITY as u64,
            "lead {} exceeded capacity {CAPACITY}",
            max_lead.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn pipeline_handles_empty_and_single_streams() {
        let exec = Executor::new(4);
        let mut seen = Vec::new();
        assert_eq!(
            exec.pipeline_ordered(
                8,
                std::iter::empty::<u8>(),
                |_, x| x,
                |i, r| seen.push((i, r))
            ),
            0
        );
        assert!(seen.is_empty());
        assert_eq!(
            exec.pipeline_ordered(
                8,
                std::iter::once(9u8),
                |_, x| x + 1,
                |i, r| seen.push((i, r))
            ),
            1
        );
        assert_eq!(seen, [(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "pipe boom at 5")]
    fn pipeline_propagates_worker_panics() {
        Executor::new(4).pipeline_ordered(
            4,
            0..64usize,
            |i, _| {
                if i == 5 {
                    panic!("pipe boom at 5");
                }
                i
            },
            |_, _| {},
        );
    }

    #[test]
    fn pipeline_isolate_contains_panics_in_order() {
        // Under Isolate a panicking task becomes an ordered Err; every
        // other item — before, after, concurrent — is untouched, and the
        // consumed stream is identical for any thread count.
        let run = |threads: usize, capacity: usize| {
            let mut seen: Vec<(usize, Result<u64, String>)> = Vec::new();
            let n = Executor::new(threads).pipeline_ordered_policy(
                PanicPolicy::Isolate,
                capacity,
                0..64u64,
                |i, x| {
                    if i % 13 == 5 {
                        panic!("isolated boom at {i}");
                    }
                    x * 3
                },
                |i, r| seen.push((i, r.map_err(|p| p.message))),
            );
            assert_eq!(n, 64);
            seen
        };
        let serial = run(1, 4);
        assert_eq!(serial.len(), 64);
        for (i, r) in &serial {
            if i % 13 == 5 {
                assert_eq!(*r, Err(format!("isolated boom at {i}")));
            } else {
                assert_eq!(*r, Ok(*i as u64 * 3));
            }
        }
        for (threads, capacity) in [(2, 1), (3, 4), (8, 64)] {
            assert_eq!(
                run(threads, capacity),
                serial,
                "{threads} threads / capacity {capacity} diverged under Isolate"
            );
        }
    }

    #[test]
    fn pipeline_isolate_reports_seq_and_placeholder_payloads() {
        let mut errs: Vec<TaskPanic> = Vec::new();
        Executor::new(3).pipeline_ordered_policy(
            PanicPolicy::Isolate,
            2,
            0..8usize,
            |i, _| {
                if i == 2 {
                    // A String payload (panic! with formatting).
                    panic!("string payload {i}");
                }
                if i == 5 {
                    // A non-string payload must not poison the stream.
                    std::panic::panic_any(42u32);
                }
                i
            },
            |_, r| {
                if let Err(p) = r {
                    errs.push(p);
                }
            },
        );
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].seq, 2);
        assert_eq!(errs[0].message, "string payload 2");
        assert_eq!(errs[1].seq, 5);
        assert_eq!(errs[1].message, "non-string panic payload");
        assert_eq!(errs[0].to_string(), "task 2 panicked: string payload 2");
    }

    #[test]
    #[should_panic(expected = "consumer boom under isolate")]
    fn pipeline_isolate_still_propagates_consumer_panics() {
        // Isolate contains *task* panics only: the consumer owns the
        // output stream and nothing can answer for it.
        Executor::new(4).pipeline_ordered_policy(
            PanicPolicy::Isolate,
            4,
            0..64usize,
            |_, x| x,
            |i, _| {
                if i == 3 {
                    panic!("consumer boom under isolate");
                }
            },
        );
    }

    #[test]
    fn panic_policy_defaults_to_propagate() {
        assert_eq!(PanicPolicy::default(), PanicPolicy::Propagate);
    }

    #[test]
    #[should_panic(expected = "consumer boom")]
    fn pipeline_propagates_consumer_panics() {
        Executor::new(4).pipeline_ordered(
            4,
            0..64usize,
            |_, x| x,
            |i, _| {
                if i == 3 {
                    panic!("consumer boom");
                }
            },
        );
    }
}
