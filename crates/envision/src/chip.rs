//! The analytical Envision power/performance model.

use crate::workload::LayerRun;
use dvafs_arith::activity::{extract_dvafs_profile, ActivityProfile};
use dvafs_arith::subword::SubwordMode;
use dvafs_tech::technology::Technology;
use serde::{Deserialize, Serialize};

/// Published chip anchor values used for calibration.
mod anchor {
    /// Power at 1×16 b, 200 MHz, dense data (paper: 300 mW).
    pub const FULL_POWER_MW: f64 = 300.0;
    /// Share of the MAC array (`as`) in the full-precision power.
    pub const AS_SHARE: f64 = 0.70;
    /// Share of control/decode (`nas`).
    pub const NAS_SHARE: f64 = 0.15;
    /// Share of on-chip SRAM (`mem`).
    pub const MEM_SHARE: f64 = 0.15;
    /// Zero-guarding control overhead (fraction of a MAC's energy spent
    /// even when the MAC is skipped).
    pub const GUARD_OVERHEAD: f64 = 0.05;
    /// Exponent of the data-dependent activity model
    /// `α(w, a) = (w·a / lane²)^EXP` (fits the gate-level extraction).
    pub const DATA_ACTIVITY_EXP: f64 = 0.9;
}

/// The Envision CNN processor model.
///
/// # Example
///
/// ```
/// use dvafs_envision::chip::EnvisionChip;
/// use dvafs_arith::SubwordMode;
///
/// let chip = EnvisionChip::new();
/// // Peak throughput quadruples in the 4x4b mode.
/// let g16 = chip.peak_gops(SubwordMode::X1, 200.0);
/// let g4 = chip.peak_gops(SubwordMode::X4, 200.0);
/// assert!((g16 - 102.4).abs() < 1.0);
/// assert!((g4 - 409.6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvisionChip {
    tech: Technology,
    dvafs_profile: ActivityProfile,
    mac_units: usize,
    mac_efficiency: f64,
    data_mem_kb: usize,
    prog_mem_kb: usize,
}

impl EnvisionChip {
    /// Number of operand pairs used for activity extraction.
    const PROFILE_SAMPLES: usize = 150;
    /// Extraction seed.
    const PROFILE_SEED: u64 = 0xE0715;

    /// Creates the chip model with a freshly extracted activity profile.
    #[must_use]
    pub fn new() -> Self {
        EnvisionChip {
            tech: Technology::fdsoi28(),
            dvafs_profile: extract_dvafs_profile(Self::PROFILE_SAMPLES, Self::PROFILE_SEED),
            mac_units: 256,
            mac_efficiency: 0.73,
            data_mem_kb: 132,
            prog_mem_kb: 16,
        }
    }

    /// The 28 nm FDSOI technology model.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Number of MAC units (256).
    #[must_use]
    pub fn mac_units(&self) -> usize {
        self.mac_units
    }

    /// Typical MAC-array utilization (73 % in the paper's 5×5 CONV).
    #[must_use]
    pub fn mac_efficiency(&self) -> f64 {
        self.mac_efficiency
    }

    /// On-chip data memory in kB (132).
    #[must_use]
    pub fn data_mem_kb(&self) -> usize {
        self.data_mem_kb
    }

    /// On-chip program memory in kB (16).
    #[must_use]
    pub fn prog_mem_kb(&self) -> usize {
        self.prog_mem_kb
    }

    /// Peak throughput in GOPS (1 MAC = 2 ops) for a mode and clock.
    #[must_use]
    pub fn peak_gops(&self, mode: SubwordMode, f_mhz: f64) -> f64 {
        2.0 * self.mac_units as f64 * mode.lanes() as f64 * f_mhz / 1e3
    }

    /// Effective throughput in GOPS at the typical MAC efficiency.
    #[must_use]
    pub fn effective_gops(&self, mode: SubwordMode, f_mhz: f64) -> f64 {
        self.peak_gops(mode, f_mhz) * self.mac_efficiency
    }

    /// Per-cycle MAC-array activity of a mode relative to `1x16b`
    /// (gate-level extraction; paper k3).
    #[must_use]
    pub fn mode_activity(&self, mode: SubwordMode) -> f64 {
        self.dvafs_profile
            .at_bits(mode.lane_bits())
            .map_or(1.0, |e| e.activity_per_cycle)
    }

    /// Data-dependent activity scaling within a lane: operands narrower
    /// than the lane width toggle fewer partial products.
    #[must_use]
    pub fn data_activity(&self, mode: SubwordMode, weight_bits: u32, input_bits: u32) -> f64 {
        let lane = f64::from(mode.lane_bits());
        let frac = (f64::from(weight_bits) * f64::from(input_bits)) / (lane * lane);
        frac.powf(anchor::DATA_ACTIVITY_EXP).min(1.0)
    }

    /// MAC-skipping factor from zero guarding: the fraction of MAC energy
    /// still spent given weight/input sparsity, including the guard logic
    /// overhead.
    #[must_use]
    pub fn guard_factor(&self, weight_sparsity: f64, input_sparsity: f64) -> f64 {
        ((1.0 - weight_sparsity) * (1.0 - input_sparsity) + anchor::GUARD_OVERHEAD).min(1.0)
    }

    /// The rail voltage for a clock frequency, from the calibrated delay
    /// model (200 MHz → ~1.05 V, 100 MHz → ~0.80 V, 50 MHz → ~0.65 V).
    #[must_use]
    pub fn voltage_for_frequency(&self, f_mhz: f64) -> f64 {
        let budget = self.tech.nominal_frequency_mhz() / f_mhz;
        self.tech.voltage_solver().min_voltage(budget)
    }

    /// The rail voltage at a *fixed* clock when the active critical path
    /// shortens in a subword mode (Fig. 8a's voltage scaling).
    #[must_use]
    pub fn voltage_for_mode_at_nominal_clock(&self, mode: SubwordMode) -> f64 {
        let depth = self
            .dvafs_profile
            .at_bits(mode.lane_bits())
            .map_or(1.0, |e| e.depth_ratio);
        self.tech.voltage_solver().min_voltage(1.0 / depth)
    }

    /// Average power in milliwatts while executing a layer.
    ///
    /// The model: `P = (f/fnom)·(V/Vnom)² · [ Pas·α_mode·α_data·guard +
    /// Pnas + Pmem·traffic·(1-input_sparsity) ]` with the component split
    /// calibrated to the 300 mW full-precision anchor.
    ///
    /// # Panics
    ///
    /// Panics if the layer fails [`LayerRun::validate`] — call it first
    /// for untrusted inputs.
    #[must_use]
    pub fn power_mw(&self, layer: &LayerRun) -> f64 {
        layer.validate().expect("layer must be valid");
        let v = self.voltage_for_frequency(layer.f_mhz);
        self.power_mw_at(layer, v)
    }

    /// Component powers `(as, nas, mem)` in mW at the nominal rail and
    /// clock, before frequency/voltage scaling.
    #[must_use]
    pub fn power_components_mw(&self, layer: &LayerRun) -> (f64, f64, f64) {
        let p_as = anchor::FULL_POWER_MW
            * anchor::AS_SHARE
            * self.mode_activity(layer.mode)
            * self.data_activity(layer.mode, layer.weight_bits, layer.input_bits)
            * self.guard_factor(layer.weight_sparsity, layer.input_sparsity);
        let p_nas = anchor::FULL_POWER_MW * anchor::NAS_SHARE;
        // Packed subwords keep the word width busy; DAS-style narrow data
        // in 1x16b mode leaves bit lines quiet. Compressed sparse storage
        // (ref [12]) removes traffic proportional to input sparsity.
        let traffic = if layer.mode.lanes() > 1 {
            1.0
        } else {
            f64::from(layer.weight_bits.max(layer.input_bits)) / 16.0
        };
        let p_mem =
            anchor::FULL_POWER_MW * anchor::MEM_SHARE * traffic * (1.0 - layer.input_sparsity);
        (p_as, p_nas, p_mem)
    }

    /// Like [`power_mw`](Self::power_mw) with one explicit rail voltage for
    /// the whole chip (the DVAFS regime: everything scales together).
    #[must_use]
    pub fn power_mw_at(&self, layer: &LayerRun, v: f64) -> f64 {
        self.power_mw_rails(layer, v, v)
    }

    /// Power with split rails: the MAC array at `v_as`, control and memory
    /// at `v_rest` (the DVAS regime of Fig. 8a scales only `v_as`).
    #[must_use]
    pub fn power_mw_rails(&self, layer: &LayerRun, v_as: f64, v_rest: f64) -> f64 {
        let f_factor = layer.f_mhz / self.tech.nominal_frequency_mhz();
        let (p_as, p_nas, p_mem) = self.power_components_mw(layer);
        f_factor
            * (p_as * self.tech.voltage_energy_factor(v_as)
                + (p_nas + p_mem) * self.tech.voltage_energy_factor(v_rest))
    }

    /// Wall-clock time to execute a layer, in seconds.
    #[must_use]
    pub fn layer_time_s(&self, layer: &LayerRun) -> f64 {
        let macs_per_s = self.mac_units as f64
            * layer.mode.lanes() as f64
            * self.mac_efficiency
            * layer.f_mhz
            * 1e6;
        layer.mmacs_per_frame * 1e6 / macs_per_s
    }

    /// Energy to execute a layer once, in millijoules.
    #[must_use]
    pub fn layer_energy_mj(&self, layer: &LayerRun) -> f64 {
        self.power_mw(layer) * self.layer_time_s(&layer.clone())
    }

    /// Efficiency in TOPS/W at the layer's operating point (effective ops
    /// over average power, as the paper reports).
    #[must_use]
    pub fn tops_per_w(&self, layer: &LayerRun) -> f64 {
        let gops = self.effective_gops(layer.mode, layer.f_mhz);
        gops / self.power_mw(layer)
    }
}

impl Default for EnvisionChip {
    fn default() -> Self {
        EnvisionChip::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> EnvisionChip {
        EnvisionChip::new()
    }

    #[test]
    fn peak_throughput_matches_paper() {
        let c = chip();
        // Paper: 102 GOPS at 1x16b, 408 GOPS at 4x4b (200 MHz).
        assert!((c.peak_gops(SubwordMode::X1, 200.0) - 102.4).abs() < 1.0);
        assert!((c.peak_gops(SubwordMode::X4, 200.0) - 409.6).abs() < 2.0);
        // 76 GOPS nominal effective throughput.
        let eff = c.effective_gops(SubwordMode::X1, 200.0);
        assert!((eff - 76.0).abs() < 3.0, "effective {eff}");
    }

    #[test]
    fn full_precision_power_anchor() {
        let c = chip();
        let dense = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, 100.0);
        let p = c.power_mw(&dense);
        // Paper: 300 mW at 16 b, 200 MHz.
        assert!((p - 300.0).abs() < 15.0, "full-precision power {p}");
    }

    #[test]
    fn dvafs_4x4_constant_throughput_anchor() {
        let c = chip();
        // 4x4b at 50 MHz keeps 76 effective GOPS and draws ~18 mW.
        let l = LayerRun::dense(SubwordMode::X4, 50.0, 4, 4, 100.0);
        let p = c.power_mw(&l);
        assert!(p > 10.0 && p < 26.0, "4x4b @ 50 MHz power {p}");
        let eff = c.tops_per_w(&l);
        // Paper: 4.2 TOPS/W (we accept the same factor-of-2 region).
        assert!(eff > 2.5 && eff < 8.0, "efficiency {eff}");
        let gops = c.effective_gops(SubwordMode::X4, 50.0);
        assert!((gops - 76.0).abs() < 3.0, "constant throughput {gops}");
    }

    #[test]
    fn voltage_tracks_frequency_like_table3() {
        let c = chip();
        let v200 = c.voltage_for_frequency(200.0);
        let v100 = c.voltage_for_frequency(100.0);
        let v50 = c.voltage_for_frequency(50.0);
        assert!((v200 - 1.05).abs() < 0.03, "v200={v200}");
        assert!((v100 - 0.80).abs() < 0.04, "v100={v100}");
        assert!((v50 - 0.65).abs() < 0.04, "v50={v50}");
    }

    #[test]
    fn sparsity_guarding_reduces_power() {
        let c = chip();
        let dense = LayerRun::dense(SubwordMode::X2, 100.0, 8, 8, 100.0);
        let sparse = dense.clone().with_sparsity(0.5, 0.8).unwrap();
        assert!(c.power_mw(&sparse) < c.power_mw(&dense) * 0.7);
    }

    #[test]
    fn narrow_data_reduces_power_within_a_mode() {
        let c = chip();
        let wide = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, 100.0);
        let narrow = LayerRun::dense(SubwordMode::X1, 200.0, 8, 9, 100.0);
        assert!(c.power_mw(&narrow) < c.power_mw(&wide) * 0.8);
    }

    #[test]
    fn layer_time_scales_with_work_and_mode() {
        let c = chip();
        let a = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, 100.0);
        let b = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, 200.0);
        assert!((c.layer_time_s(&b) / c.layer_time_s(&a) - 2.0).abs() < 1e-9);
        // 4 lanes at a quarter clock: same time.
        let d = LayerRun::dense(SubwordMode::X4, 50.0, 4, 4, 100.0);
        assert!((c.layer_time_s(&d) / c.layer_time_s(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn guard_factor_bounds() {
        let c = chip();
        assert!((c.guard_factor(0.0, 0.0) - 1.0).abs() < 1e-9);
        let g = c.guard_factor(0.35, 0.87);
        assert!(g > 0.05 && g < 0.2, "guard {g}");
    }

    #[test]
    fn memory_sizes_match_the_chip() {
        let c = chip();
        assert_eq!(c.data_mem_kb(), 132);
        assert_eq!(c.prog_mem_kb(), 16);
        assert_eq!(c.mac_units(), 256);
    }
}
