//! # dvafs-envision — a model of the Envision DVAFS CNN processor
//!
//! Envision (Section V of the DVAFS paper; Moons et al., ISSCC 2017) is a
//! 28 nm FDSOI C-programmable CNN processor with 256 subword-parallel MAC
//! units, 132 kB data / 16 kB program memory, operated between
//! 200 MHz @ ~1 V (`1x16b`) and 50 MHz @ 0.65 V (`4x4b`). This crate models
//! the measured silicon analytically:
//!
//! * per-mode MAC-array activity comes from the gate-level extraction of
//!   [`dvafs_arith`]; sub-mode operand widths (e.g. 5-bit weights in the
//!   `2x8b` mode) scale activity further;
//! * rail voltage follows the calibrated 28 nm delay model of
//!   [`dvafs_tech`] (100 MHz → 0.80 V, 50 MHz → 0.65 V, as in Table III);
//! * zero-guarding skips MACs with a zero weight or input operand
//!   (sparsity columns of Table III), and compressed storage scales memory
//!   traffic;
//! * the component split is calibrated to the chip's published anchor
//!   points: 300 mW at 16 b/200 MHz and ~4.2 TOPS/W at 4×4 b/50 MHz.
//!
//! [`measure`] regenerates Fig. 8a/8b and Table III.
//!
//! ## Example
//!
//! ```
//! use dvafs_envision::chip::EnvisionChip;
//! use dvafs_envision::workload::LayerRun;
//! use dvafs_arith::SubwordMode;
//!
//! let chip = EnvisionChip::new();
//! let layer = LayerRun::dense(SubwordMode::X4, 50.0, 4, 4, 100.0);
//! let p = chip.power_mw(&layer);
//! assert!(p > 5.0 && p < 50.0, "4x4b @ 50 MHz draws ~18 mW, got {p}");
//! ```

#![warn(missing_docs)]

pub mod chip;
pub mod error;
pub mod measure;
pub mod workload;

pub use chip::EnvisionChip;
pub use error::EnvisionError;
pub use workload::LayerRun;
