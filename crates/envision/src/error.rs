//! Error type for the Envision chip model.

use std::fmt;

/// Errors reported by the chip model.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvisionError {
    /// Operand bits exceed the selected subword mode's lane width.
    BitsExceedLane {
        /// Requested operand width.
        bits: u32,
        /// Lane width of the mode.
        lane_bits: u32,
    },
    /// A frequency outside the chip's operating range was requested.
    FrequencyOutOfRange {
        /// Requested frequency in MHz.
        mhz: f64,
    },
    /// A sparsity fraction outside `[0, 1)` was supplied.
    InvalidSparsity {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for EnvisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvisionError::BitsExceedLane { bits, lane_bits } => {
                write!(f, "{bits}-bit operands do not fit {lane_bits}-bit lanes")
            }
            EnvisionError::FrequencyOutOfRange { mhz } => {
                write!(
                    f,
                    "frequency {mhz} MHz outside the chip's 10..=200 MHz range"
                )
            }
            EnvisionError::InvalidSparsity { value } => {
                write!(f, "sparsity {value} outside the valid range 0..1")
            }
        }
    }
}

impl std::error::Error for EnvisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(EnvisionError::BitsExceedLane {
            bits: 9,
            lane_bits: 8
        }
        .to_string()
        .contains('9'));
        assert!(EnvisionError::FrequencyOutOfRange { mhz: 500.0 }
            .to_string()
            .contains("500"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnvisionError>();
    }
}
