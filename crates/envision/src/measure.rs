//! Measurement sweeps: Fig. 8a, Fig. 8b and Table III.
//!
//! These are the data sources behind the `fig8` and `table3` scenarios of
//! the experiment registry (`dvafs::scenario`) — run them with
//! `dvafs run fig8` / `dvafs run table3` from `crates/bench`.

use crate::chip::EnvisionChip;
use crate::workload::{alexnet_table3, lenet5_table3, vgg16_table3, LayerRun};
use dvafs_arith::activity::{extract_das_profile, ActivityProfile};
use dvafs_arith::subword::SubwordMode;
use dvafs_arith::Precision;
use dvafs_executor::Executor;
use dvafs_tech::scaling::ScalingMode;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 8 energy/word curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Sample {
    /// Scaling regime.
    pub mode: ScalingMode,
    /// Precision in bits.
    pub bits: u32,
    /// Clock in MHz.
    pub f_mhz: f64,
    /// Rail voltage in volts.
    pub v: f64,
    /// Chip power in mW.
    pub power_mw: f64,
    /// Energy per operation relative to the 16-bit baseline.
    pub energy_rel: f64,
}

/// The Fig. 8 sweep generator for one chip model.
#[derive(Debug, Clone)]
pub struct Fig8Sweep {
    chip: EnvisionChip,
    das_profile: ActivityProfile,
    exec: Executor,
}

impl Fig8Sweep {
    /// Creates the sweep with a freshly extracted DAS profile (for the
    /// DVAS critical-path scaling at constant clock).
    #[must_use]
    pub fn new(chip: EnvisionChip) -> Self {
        Fig8Sweep {
            chip,
            das_profile: extract_das_profile(150, 0xF168),
            exec: Executor::from_env(),
        }
    }

    /// Runs the sweep grids on an explicit executor (thread count). The
    /// samples do not depend on the choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The chip under measurement.
    #[must_use]
    pub fn chip(&self) -> &EnvisionChip {
        &self.chip
    }

    fn das_depth(&self, bits: u32) -> f64 {
        self.das_profile
            .at_bits(bits)
            .map_or(1.0, |e| e.depth_ratio)
    }

    fn layer(mode: SubwordMode, f_mhz: f64, bits: u32) -> LayerRun {
        let lane = mode.lane_bits().min(bits);
        LayerRun::dense(mode, f_mhz, lane, lane, 100.0)
    }

    /// One sample of the constant-200 MHz sweep (Fig. 8a). Energy per
    /// operation accounts for the extra words subword modes process.
    #[must_use]
    pub fn at_constant_frequency(&self, mode: ScalingMode, bits: u32) -> Fig8Sample {
        let f = 200.0;
        let chip = &self.chip;
        let vnom = chip.technology().nominal_voltage();
        // DVAS scales only the MAC array's rail at a fixed clock; DVAFS
        // scales the whole chip once the subword mode shortens the path.
        let (sub, v_as, v_rest) = match mode {
            ScalingMode::Das => (SubwordMode::X1, vnom, vnom),
            ScalingMode::Dvas => (
                SubwordMode::X1,
                chip.technology()
                    .voltage_solver()
                    .min_voltage(1.0 / self.das_depth(bits)),
                vnom,
            ),
            ScalingMode::Dvafs => {
                let m = SubwordMode::for_precision(
                    Precision::new(bits).expect("sweep precisions are valid"),
                );
                let v = chip.voltage_for_mode_at_nominal_clock(m);
                (m, v, v)
            }
        };
        let layer = Self::layer(sub, f, bits);
        let power_mw = chip.power_mw_rails(&layer, v_as, v_rest);
        let v = v_as;
        let gops = chip.effective_gops(sub, f);
        Fig8Sample {
            mode,
            bits,
            f_mhz: f,
            v,
            power_mw,
            energy_rel: 0.0, // filled by the sweep
        }
        .with_energy(power_mw / gops)
    }

    /// One sample of the constant-76 GOPS sweep (Fig. 8b): DVAFS lowers
    /// the clock by the subword factor; DAS/DVAS cannot.
    #[must_use]
    pub fn at_constant_throughput(&self, mode: ScalingMode, bits: u32) -> Fig8Sample {
        match mode {
            ScalingMode::Das | ScalingMode::Dvas => self.at_constant_frequency(mode, bits),
            ScalingMode::Dvafs => {
                let sub = SubwordMode::for_precision(
                    Precision::new(bits).expect("sweep precisions are valid"),
                );
                let f = 200.0 / sub.lanes() as f64;
                let layer = Self::layer(sub, f, bits);
                let chip = &self.chip;
                let v = chip.voltage_for_frequency(f);
                let power_mw = chip.power_mw_at(&layer, v);
                let gops = chip.effective_gops(sub, f);
                Fig8Sample {
                    mode,
                    bits,
                    f_mhz: f,
                    v,
                    power_mw,
                    energy_rel: 0.0,
                }
                .with_energy(power_mw / gops)
            }
        }
    }

    /// Full Fig. 8a sweep, normalized to the 16-bit point.
    #[must_use]
    pub fn fig8a(&self) -> Vec<Fig8Sample> {
        self.sweep(|m, b| self.at_constant_frequency(m, b))
    }

    /// Full Fig. 8b sweep, normalized to the 16-bit point.
    #[must_use]
    pub fn fig8b(&self) -> Vec<Fig8Sample> {
        self.sweep(|m, b| self.at_constant_throughput(m, b))
    }

    fn sweep<F: Fn(ScalingMode, u32) -> Fig8Sample + Sync>(&self, f: F) -> Vec<Fig8Sample> {
        let mut out = self
            .exec
            .par_map_indexed(&ScalingMode::precision_grid(), |_, &(mode, bits)| {
                f(mode, bits)
            });
        // The 16-bit DAS cell is the figure's normalization anchor; it is
        // grid cell 0 by `precision_grid`'s documented contract.
        let baseline = out[0].energy_rel;
        for s in &mut out {
            s.energy_rel /= baseline;
        }
        out
    }
}

impl Fig8Sample {
    fn with_energy(mut self, e: f64) -> Self {
        self.energy_rel = e;
        self
    }
}

/// One computed row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// The layer workload.
    pub layer: LayerRun,
    /// Rail voltage in volts.
    pub v: f64,
    /// Average power in mW.
    pub power_mw: f64,
    /// Efficiency in TOPS/W.
    pub tops_per_w: f64,
}

/// A network's Table III block with its totals row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Per-layer rows.
    pub rows: Vec<Table3Row>,
    /// Total work per frame in MMACs.
    pub total_mmacs: f64,
    /// Time-averaged power in mW (the paper's "Total" power row).
    pub avg_power_mw: f64,
    /// Whole-network efficiency in TOPS/W.
    pub avg_tops_per_w: f64,
    /// Achievable frame rate in frames/s.
    pub fps: f64,
}

/// Computes a network's Table III block on a chip model (serial).
#[must_use]
pub fn summarize(chip: &EnvisionChip, name: &str, layers: &[LayerRun]) -> NetworkSummary {
    summarize_with(chip, name, layers, &Executor::serial())
}

/// Computes a network's Table III block on a chip model, evaluating the
/// per-layer rows in parallel on `exec`. Rows merge in layer order and the
/// frame totals fold in layer order, so the summary is bit-identical to
/// [`summarize`].
#[must_use]
pub fn summarize_with(
    chip: &EnvisionChip,
    name: &str,
    layers: &[LayerRun],
    exec: &Executor,
) -> NetworkSummary {
    // One pass per layer computes the row and the quantities the totals
    // fold over; the folds themselves stay sequential in layer order.
    let rows_and_times = exec.par_map_indexed(layers, |_, l| {
        let row = Table3Row {
            layer: l.clone(),
            v: chip.voltage_for_frequency(l.f_mhz),
            power_mw: chip.power_mw(l),
            tops_per_w: chip.tops_per_w(l),
        };
        (row, chip.layer_time_s(l), chip.layer_energy_mj(l))
    });
    let total_time: f64 = rows_and_times.iter().map(|(_, t, _)| t).sum();
    let total_energy_mj: f64 = rows_and_times.iter().map(|(_, _, e)| e).sum();
    let rows: Vec<Table3Row> = rows_and_times.into_iter().map(|(r, _, _)| r).collect();
    let total_mmacs: f64 = layers.iter().map(|l| l.mmacs_per_frame).sum();
    let total_ops = total_mmacs * 2e6;
    NetworkSummary {
        name: name.to_string(),
        rows,
        total_mmacs,
        avg_power_mw: total_energy_mj / total_time,
        // TOPS/W = ops / energy: (ops) / (mJ * 1e-3 J) / 1e12.
        avg_tops_per_w: total_ops / (total_energy_mj * 1e-3) / 1e12,
        fps: 1.0 / total_time,
    }
}

/// The complete Table III: VGG16, AlexNet and LeNet-5 blocks (serial).
#[must_use]
pub fn table3(chip: &EnvisionChip) -> Vec<NetworkSummary> {
    table3_with(chip, &Executor::serial())
}

/// The complete Table III with per-layer rows evaluated in parallel on
/// `exec`; bit-identical to [`table3`] for any thread count.
#[must_use]
pub fn table3_with(chip: &EnvisionChip, exec: &Executor) -> Vec<NetworkSummary> {
    vec![
        summarize_with(chip, "VGG16", &vgg16_table3(), exec),
        summarize_with(chip, "AlexNet", &alexnet_table3(), exec),
        summarize_with(chip, "LeNet-5", &lenet5_table3(), exec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Fig8Sweep {
        Fig8Sweep::new(EnvisionChip::new())
    }

    #[test]
    fn fig8a_baseline_is_unity() {
        let s = sweep();
        let samples = s.fig8a();
        let base = samples
            .iter()
            .find(|x| x.mode == ScalingMode::Das && x.bits == 16)
            .unwrap();
        assert!((base.energy_rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig8a_gains_match_paper_factors() {
        // Paper: 2.4x (DAS) and 3.8x (DVAS) less energy per 4b op at 200MHz.
        let s = sweep();
        let e = |m, b| s.at_constant_frequency(m, b).energy_rel;
        let das_gain = e(ScalingMode::Das, 16) / e(ScalingMode::Das, 4);
        let dvas_gain = e(ScalingMode::Das, 16) / e(ScalingMode::Dvas, 4);
        assert!(das_gain > 1.8 && das_gain < 5.0, "DAS gain {das_gain}");
        assert!(dvas_gain > das_gain, "DVAS must beat DAS");
        assert!(dvas_gain > 2.3 && dvas_gain < 6.0, "DVAS gain {dvas_gain}");
    }

    #[test]
    fn fig8b_dvafs_hits_paper_region() {
        let s = sweep();
        // Paper: 300 mW -> 18 mW at 4x4b / 50 MHz constant throughput.
        let p = s.at_constant_throughput(ScalingMode::Dvafs, 4);
        assert_eq!(p.f_mhz, 50.0);
        assert!(
            p.power_mw > 10.0 && p.power_mw < 26.0,
            "power {}",
            p.power_mw
        );
        // Improvement over DAS at constant throughput: paper 6.9x.
        let das = s.at_constant_throughput(ScalingMode::Das, 4);
        let gain = das.energy_rel / p.energy_rel;
        assert!(gain > 3.0 && gain < 12.0, "DVAFS vs DAS gain {gain}");
    }

    #[test]
    fn fig8_energy_monotone_in_precision_for_dvafs() {
        let s = sweep();
        let samples = s.fig8b();
        let dvafs: Vec<f64> = samples
            .iter()
            .filter(|x| x.mode == ScalingMode::Dvafs)
            .map(|x| x.energy_rel)
            .collect();
        // Ordered 16, 12, 8, 4: energy strictly decreasing.
        assert!(dvafs.windows(2).all(|w| w[0] > w[1]), "{dvafs:?}");
    }

    #[test]
    fn parallel_fig8_and_table3_bit_identical_to_serial() {
        let serial = sweep().with_executor(Executor::serial());
        let parallel = sweep().with_executor(Executor::new(4));
        assert_eq!(serial.fig8a(), parallel.fig8a());
        assert_eq!(serial.fig8b(), parallel.fig8b());

        let chip = EnvisionChip::new();
        let st = table3(&chip);
        let pt = table3_with(&chip, &Executor::new(4));
        assert_eq!(st, pt);
    }

    #[test]
    fn table3_totals_in_paper_region() {
        let chip = EnvisionChip::new();
        let t = table3(&chip);
        assert_eq!(t.len(), 3);
        let vgg = &t[0];
        let alex = &t[1];
        let lenet = &t[2];
        // Paper totals: VGG 26 mW / 2 TOPS/W, AlexNet 44 mW / 1.8 TOPS/W,
        // LeNet 25 mW / 3 TOPS/W. Allow the model a factor ~2 window.
        assert!(
            vgg.avg_power_mw > 13.0 && vgg.avg_power_mw < 60.0,
            "VGG {}",
            vgg.avg_power_mw
        );
        assert!(
            alex.avg_power_mw > 22.0 && alex.avg_power_mw < 100.0,
            "Alex {}",
            alex.avg_power_mw
        );
        assert!(
            lenet.avg_power_mw > 5.0 && lenet.avg_power_mw < 50.0,
            "LeNet {}",
            lenet.avg_power_mw
        );
        assert!(vgg.avg_tops_per_w > 1.0 && vgg.avg_tops_per_w < 5.0);
        // LeNet runs at the deepest scaling: best efficiency of the three.
        assert!(lenet.avg_tops_per_w > vgg.avg_tops_per_w * 0.8);
    }

    #[test]
    fn table3_frame_rates_ordering() {
        // Paper: VGG16 3.3 fps, AlexNet 47 fps, LeNet-5 13 kfps.
        let chip = EnvisionChip::new();
        let t = table3(&chip);
        let (vgg, alex, lenet) = (&t[0], &t[1], &t[2]);
        assert!(vgg.fps < alex.fps && alex.fps < lenet.fps);
        assert!(vgg.fps > 1.0 && vgg.fps < 10.0, "VGG fps {}", vgg.fps);
        assert!(lenet.fps > 5_000.0, "LeNet fps {}", lenet.fps);
    }

    #[test]
    fn lenet_first_layer_is_most_efficient_row() {
        // Paper: LeNet1 reaches 13.6 TOPS/W (4x4b, 1b inputs, very sparse).
        let chip = EnvisionChip::new();
        let t = table3(&chip);
        let lenet1 = &t[2].rows[0];
        assert!(
            lenet1.tops_per_w > 5.0,
            "LeNet1 efficiency {}",
            lenet1.tops_per_w
        );
        let all_max = t
            .iter()
            .flat_map(|n| n.rows.iter())
            .map(|r| r.tops_per_w)
            .fold(0.0, f64::max);
        assert!(
            (lenet1.tops_per_w - all_max).abs() < 1e-9,
            "LeNet1 must top the table"
        );
    }
}
