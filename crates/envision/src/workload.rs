//! Per-layer workload descriptors and the paper's Table III benchmark set.

use crate::error::EnvisionError;
use dvafs_arith::subword::SubwordMode;
use serde::{Deserialize, Serialize};

/// One CNN layer as Envision executes it: mode, clock, operand widths,
/// sparsities and work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// Layer label (paper notation, e.g. `"VGG2-13"`).
    pub name: String,
    /// Subword mode the layer runs in.
    pub mode: SubwordMode,
    /// Clock frequency in MHz.
    pub f_mhz: f64,
    /// Weight precision in bits (must fit the mode's lanes).
    pub weight_bits: u32,
    /// Input feature-map precision in bits.
    pub input_bits: u32,
    /// Fraction of zero weights (guard-skippable MACs).
    pub weight_sparsity: f64,
    /// Fraction of zero input activations.
    pub input_sparsity: f64,
    /// Work per frame in millions of MACs.
    pub mmacs_per_frame: f64,
}

impl LayerRun {
    /// A dense (non-sparse) layer descriptor.
    #[must_use]
    pub fn dense(
        mode: SubwordMode,
        f_mhz: f64,
        weight_bits: u32,
        input_bits: u32,
        mmacs: f64,
    ) -> Self {
        LayerRun {
            name: format!("{mode}@{f_mhz}MHz"),
            mode,
            f_mhz,
            weight_bits,
            input_bits,
            weight_sparsity: 0.0,
            input_sparsity: 0.0,
            mmacs_per_frame: mmacs,
        }
    }

    /// Renames the layer.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds sparsity levels.
    ///
    /// # Errors
    ///
    /// Returns [`EnvisionError::InvalidSparsity`] for values outside `[0, 1)`.
    pub fn with_sparsity(mut self, weights: f64, inputs: f64) -> Result<Self, EnvisionError> {
        for v in [weights, inputs] {
            if !(0.0..1.0).contains(&v) {
                return Err(EnvisionError::InvalidSparsity { value: v });
            }
        }
        self.weight_sparsity = weights;
        self.input_sparsity = inputs;
        Ok(self)
    }

    /// Validates mode/precision/frequency consistency.
    ///
    /// # Errors
    ///
    /// Returns [`EnvisionError::BitsExceedLane`] when an operand exceeds the
    /// lane width and [`EnvisionError::FrequencyOutOfRange`] outside
    /// `10..=200` MHz.
    pub fn validate(&self) -> Result<(), EnvisionError> {
        let lane = self.mode.lane_bits();
        for bits in [self.weight_bits, self.input_bits] {
            if bits > lane || bits == 0 {
                return Err(EnvisionError::BitsExceedLane {
                    bits,
                    lane_bits: lane,
                });
            }
        }
        if !(10.0..=200.0).contains(&self.f_mhz) {
            return Err(EnvisionError::FrequencyOutOfRange { mhz: self.f_mhz });
        }
        Ok(())
    }
}

/// The VGG16 benchmark of Table III: conv1 plus the twelve deeper CONV
/// layers (aggregated in the paper as `VGG2-13`), all in `2x8b` at
/// 100 MHz / 0.80 V with per-layer sparsities in the published ranges.
///
/// # Panics
///
/// Never panics: the built-in parameters are valid.
#[must_use]
pub fn vgg16_table3() -> Vec<LayerRun> {
    let macs = dvafs_nn::models::vgg16_conv_macs();
    let mut out = Vec::new();
    // Paper: weights 5b, inputs 4b (layer 1) / 6b (rest); weight sparsity
    // 5% (layer 1), 25-75% (rest); input sparsity 10% / 30-82%.
    out.push(
        LayerRun::dense(SubwordMode::X2, 100.0, 5, 4, macs[0].mmacs())
            .named("VGG1")
            .with_sparsity(0.05, 0.10)
            .expect("valid sparsity"),
    );
    for (i, m) in macs.iter().enumerate().skip(1) {
        // Sparsity grows with depth, spanning the published 25-75 / 30-82
        // percent ranges.
        let t = (i - 1) as f64 / 11.0;
        let wsp = 0.25 + 0.50 * t;
        let isp = 0.30 + 0.52 * t;
        out.push(
            LayerRun::dense(SubwordMode::X2, 100.0, 5, 6, m.mmacs())
                .named(m.name.clone())
                .with_sparsity(wsp, isp)
                .expect("valid sparsity"),
        );
    }
    out
}

/// The AlexNet benchmark of Table III: five CONV layers with the paper's
/// per-layer modes, precisions and sparsities.
#[must_use]
pub fn alexnet_table3() -> Vec<LayerRun> {
    let macs = dvafs_nn::models::alexnet_conv_macs();
    let rows: [(usize, SubwordMode, f64, u32, u32, f64, f64); 5] = [
        (0, SubwordMode::X2, 100.0, 7, 4, 0.21, 0.29),
        (1, SubwordMode::X2, 100.0, 7, 7, 0.19, 0.89),
        (2, SubwordMode::X1, 200.0, 8, 9, 0.11, 0.82),
        (3, SubwordMode::X1, 200.0, 9, 8, 0.04, 0.72),
        (4, SubwordMode::X1, 200.0, 9, 8, 0.04, 0.72),
    ];
    rows.iter()
        .map(|&(i, mode, f, wb, ib, wsp, isp)| {
            LayerRun::dense(mode, f, wb, ib, macs[i].mmacs())
                .named(macs[i].name.clone())
                .with_sparsity(wsp, isp)
                .expect("valid sparsity")
        })
        .collect()
}

/// The LeNet-5 benchmark of Table III: two CONV layers at the paper's
/// modes, precisions and sparsities.
#[must_use]
pub fn lenet5_table3() -> Vec<LayerRun> {
    let macs = dvafs_nn::models::lenet5_conv_macs();
    vec![
        LayerRun::dense(SubwordMode::X4, 50.0, 3, 1, macs[0].mmacs())
            .named("LeNet1")
            .with_sparsity(0.35, 0.87)
            .expect("valid sparsity"),
        LayerRun::dense(SubwordMode::X2, 100.0, 4, 6, macs[1].mmacs())
            .named("LeNet2")
            .with_sparsity(0.26, 0.55)
            .expect("valid sparsity"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_constructor_and_naming() {
        let l = LayerRun::dense(SubwordMode::X2, 100.0, 8, 8, 500.0).named("conv1");
        assert_eq!(l.name, "conv1");
        assert_eq!(l.weight_sparsity, 0.0);
        assert!(l.validate().is_ok());
    }

    #[test]
    fn validation_rejects_oversized_operands() {
        let l = LayerRun::dense(SubwordMode::X4, 50.0, 5, 4, 1.0);
        assert!(matches!(
            l.validate(),
            Err(EnvisionError::BitsExceedLane {
                bits: 5,
                lane_bits: 4
            })
        ));
    }

    #[test]
    fn validation_rejects_bad_frequency() {
        let l = LayerRun::dense(SubwordMode::X1, 500.0, 16, 16, 1.0);
        assert!(matches!(
            l.validate(),
            Err(EnvisionError::FrequencyOutOfRange { .. })
        ));
    }

    #[test]
    fn sparsity_bounds_enforced() {
        let l = LayerRun::dense(SubwordMode::X1, 200.0, 16, 16, 1.0);
        assert!(l.clone().with_sparsity(0.5, 1.0).is_err());
        assert!(l.with_sparsity(0.5, 0.9).is_ok());
    }

    #[test]
    fn table3_workloads_are_valid() {
        for l in vgg16_table3()
            .into_iter()
            .chain(alexnet_table3())
            .chain(lenet5_table3())
        {
            assert!(l.validate().is_ok(), "{} invalid", l.name);
        }
    }

    #[test]
    fn table3_vgg_has_13_rows_with_published_total() {
        let v = vgg16_table3();
        assert_eq!(v.len(), 13);
        let total: f64 = v.iter().map(|l| l.mmacs_per_frame).sum();
        assert!((total - 15346.0).abs() / 15346.0 < 0.02, "total {total}");
    }

    #[test]
    fn table3_lenet_uses_deepest_scaling() {
        let l = lenet5_table3();
        assert_eq!(l[0].mode, SubwordMode::X4);
        assert_eq!(l[0].f_mhz, 50.0);
        assert_eq!(l[0].input_bits, 1);
    }
}
