//! Property-based tests of the Envision chip model's invariants.

use dvafs_arith::subword::SubwordMode;
use dvafs_envision::chip::EnvisionChip;
use dvafs_envision::workload::LayerRun;
use proptest::prelude::*;
use std::sync::OnceLock;

fn chip() -> &'static EnvisionChip {
    static CHIP: OnceLock<EnvisionChip> = OnceLock::new();
    CHIP.get_or_init(EnvisionChip::new)
}

fn mode_strategy() -> impl Strategy<Value = SubwordMode> {
    prop_oneof![
        Just(SubwordMode::X1),
        Just(SubwordMode::X2),
        Just(SubwordMode::X4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Power is always positive and bounded by the full-precision anchor
    /// (nothing can burn more than the dense 16-bit worst case at the same
    /// operating point's frequency scaling headroom).
    #[test]
    fn power_positive_and_bounded(
        mode in mode_strategy(),
        f in 10.0f64..=200.0,
        wsp in 0.0f64..0.95,
        isp in 0.0f64..0.95,
    ) {
        let bits = mode.lane_bits();
        let layer = LayerRun::dense(mode, f, bits, bits, 100.0)
            .with_sparsity(wsp, isp)
            .expect("valid sparsity");
        let p = chip().power_mw(&layer);
        prop_assert!(p > 0.0);
        prop_assert!(p <= 310.0, "power {p} exceeds the chip's envelope");
    }

    /// More sparsity never increases power.
    #[test]
    fn power_monotone_in_sparsity(
        mode in mode_strategy(),
        wsp in 0.0f64..0.9,
        extra in 0.0f64..0.09,
    ) {
        let bits = mode.lane_bits();
        let base = LayerRun::dense(mode, 100.0, bits, bits, 100.0)
            .with_sparsity(wsp, 0.2).expect("valid");
        let denser = LayerRun::dense(mode, 100.0, bits, bits, 100.0)
            .with_sparsity(wsp + extra, 0.2).expect("valid");
        prop_assert!(chip().power_mw(&denser) <= chip().power_mw(&base) + 1e-9);
    }

    /// Narrower operands never increase power within a mode.
    #[test]
    fn power_monotone_in_operand_width(
        mode in mode_strategy(),
        bits in 1u32..=4,
    ) {
        let lane = mode.lane_bits();
        let narrow = bits.min(lane);
        let wide = lane;
        let p_narrow =
            chip().power_mw(&LayerRun::dense(mode, 100.0, narrow, narrow, 100.0));
        let p_wide = chip().power_mw(&LayerRun::dense(mode, 100.0, wide, wide, 100.0));
        prop_assert!(p_narrow <= p_wide + 1e-9);
    }

    /// Layer time is inversely proportional to frequency and lanes.
    #[test]
    fn layer_time_scales(f in 25.0f64..=100.0, mmacs in 1.0f64..1000.0) {
        let c = chip();
        let l1 = LayerRun::dense(SubwordMode::X1, f, 16, 16, mmacs);
        let l2 = LayerRun::dense(SubwordMode::X1, 2.0 * f, 16, 16, mmacs);
        let ratio = c.layer_time_s(&l1) / c.layer_time_s(&l2);
        prop_assert!((ratio - 2.0).abs() < 1e-9);
        let l4 = LayerRun::dense(SubwordMode::X4, f, 4, 4, mmacs);
        let ratio4 = c.layer_time_s(&l1) / c.layer_time_s(&l4);
        prop_assert!((ratio4 - 4.0).abs() < 1e-9);
    }

    /// Voltage never rises when the clock drops.
    #[test]
    fn voltage_monotone_in_frequency(f in 10.0f64..190.0, df in 1.0f64..10.0) {
        let c = chip();
        prop_assert!(c.voltage_for_frequency(f) <= c.voltage_for_frequency(f + df) + 1e-9);
    }
}
