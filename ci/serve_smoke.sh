#!/bin/sh
# Smoke-test `dvafs serve` (see "Serve smoke" in .github/workflows/ci.yml):
# pipe the scripted request batch (ci/serve_requests.jsonl) through one
# persistent multi-worker server session and require every served scenario
# rendering to be byte-identical to the file `dvafs run --format json --out`
# writes for the same scenario — the serve determinism contract, checked at
# the shipped-binary level rather than in-process. Wall time is gated by the
# `serve` line in ci/scenario_budgets.txt (generous by design: it catches
# order-of-magnitude regressions, not scheduler noise).
set -eu

BIN="${DVAFS_BIN:-target/release/dvafs}"
REQUESTS="ci/serve_requests.jsonl"
BUDGET="$(awk '$1 == "serve" { print $2 }' ci/scenario_budgets.txt)"
: "${BUDGET:?no serve line in ci/scenario_budgets.txt}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The reference renderings, straight from the one-shot CLI path.
"$BIN" run fig2 table1 table3 --fast --threads 1 --format json \
  --out "$tmp/expected" > /dev/null

start=$(date +%s)
"$BIN" serve --threads 3 --queue 4 < "$REQUESTS" > "$tmp/replies.jsonl"
elapsed=$(( $(date +%s) - start ))

fail=0

replies=$(wc -l < "$tmp/replies.jsonl")
requests=$(grep -c . "$REQUESTS")
if [ "$replies" -ne "$requests" ]; then
  echo "serve: $requests requests but $replies replies" >&2
  fail=1
fi

# The scripted batch contains no error cases, so every reply must be ok.
bad=$(jq -r 'select(.ok != true) | .id' "$tmp/replies.jsonl")
if [ -n "$bad" ]; then
  echo "serve: reply id(s) $bad reported ok=false" >&2
  fail=1
fi

# Byte-level equivalence per scenario: the reply's "output" string (jq -j:
# raw, no trailing newline — renderings are newline-free at the end) against
# the file the CLI wrote.
for id in fig2 table1 table3; do
  jq -j "select(.scenario == \"$id\") | .output" "$tmp/replies.jsonl" \
    > "$tmp/served_$id.json"
  if cmp -s "$tmp/served_$id.json" "$tmp/expected/$id.json"; then
    echo "serve: $id matches dvafs run byte-for-byte"
  else
    echo "serve: $id DIFFERS from dvafs run" >&2
    diff "$tmp/expected/$id.json" "$tmp/served_$id.json" >&2 || true
    fail=1
  fi
done

echo "serve: batch took ${elapsed}s (budget ${BUDGET}s)"
if [ "$elapsed" -gt "$BUDGET" ]; then
  echo "serve: blew its ${BUDGET}s budget (${elapsed}s)" >&2
  fail=1
fi
exit "$fail"
