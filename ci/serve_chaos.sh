#!/bin/sh
# Chaos smoke for `dvafs serve` (see "Serve chaos smoke" in
# .github/workflows/ci.yml): replay the scripted request batch through a
# multi-worker server session with a fixed fault plan — one injected
# worker panic and one oversized request line, both mid-stream — and
# require the fault-isolation contract at the shipped-binary level:
#
#   * the process survives and answers every request, in order;
#   * the two faulted requests get the exact well-formed error replies;
#   * every non-faulted reply is byte-identical to a clean run of the
#     same batch (fault isolation never perturbs its neighbours).
#
# Wall time is gated by the `serve_chaos` line in ci/scenario_budgets.txt
# (generous by design: order-of-magnitude regressions, not noise).
set -eu

BIN="${DVAFS_BIN:-target/release/dvafs}"
REQUESTS="ci/serve_requests.jsonl"
# seq 2 is the table1 run (panics in the worker), seq 4 the lenet5
# predict (its request line arrives oversized). seq 5 is the shutdown —
# it must still drain and reply with the full served count either way.
PLAN="panic@2,oversize@4"
BUDGET="$(awk '$1 == "serve_chaos" { print $2 }' ci/scenario_budgets.txt)"
: "${BUDGET:?no serve_chaos line in ci/scenario_budgets.txt}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The clean baseline: same batch, same schedule, no faults.
"$BIN" serve --threads 3 --queue 4 < "$REQUESTS" > "$tmp/clean.jsonl"

start=$(date +%s)
"$BIN" serve --threads 3 --queue 4 --fault-plan "$PLAN" \
  < "$REQUESTS" > "$tmp/chaos.jsonl" 2> "$tmp/chaos.stderr"
elapsed=$(( $(date +%s) - start ))

fail=0

requests=$(grep -c . "$REQUESTS")
replies=$(wc -l < "$tmp/chaos.jsonl")
if [ "$replies" -ne "$requests" ]; then
  echo "serve_chaos: $requests requests but $replies replies" >&2
  fail=1
fi

# The faulted replies, pinned byte-for-byte (1-based lines 3 and 5).
expect_panic='{"id":2,"ok":false,"error":"internal: injected fault: panic at request 2"}'
expect_oversize='{"id":4,"ok":false,"error":"request line exceeds 65536 bytes (line drained, not buffered)"}'
if [ "$(sed -n '3p' "$tmp/chaos.jsonl")" = "$expect_panic" ]; then
  echo "serve_chaos: injected panic contained to request 2"
else
  echo "serve_chaos: unexpected reply to panicked request 2:" >&2
  sed -n '3p' "$tmp/chaos.jsonl" >&2
  fail=1
fi
if [ "$(sed -n '5p' "$tmp/chaos.jsonl")" = "$expect_oversize" ]; then
  echo "serve_chaos: oversized request 4 rejected without buffering"
else
  echo "serve_chaos: unexpected reply to oversized request 4:" >&2
  sed -n '5p' "$tmp/chaos.jsonl" >&2
  fail=1
fi

# Non-faulted replies must be byte-identical to the clean run.
sed '3d;5d' "$tmp/clean.jsonl" > "$tmp/clean_rest.jsonl"
sed '3d;5d' "$tmp/chaos.jsonl" > "$tmp/chaos_rest.jsonl"
if cmp -s "$tmp/clean_rest.jsonl" "$tmp/chaos_rest.jsonl"; then
  echo "serve_chaos: non-faulted replies byte-identical to clean run"
else
  echo "serve_chaos: non-faulted replies DIFFER from clean run" >&2
  diff "$tmp/clean_rest.jsonl" "$tmp/chaos_rest.jsonl" >&2 || true
  fail=1
fi

# The fault-injection banner must be loud (stderr), never silent.
if ! grep -q "FAULT INJECTION ACTIVE" "$tmp/chaos.stderr"; then
  echo "serve_chaos: missing fault-injection banner on stderr" >&2
  fail=1
fi

echo "serve_chaos: batch took ${elapsed}s (budget ${BUDGET}s)"
if [ "$elapsed" -gt "$BUDGET" ]; then
  echo "serve_chaos: blew its ${BUDGET}s budget (${elapsed}s)" >&2
  fail=1
fi
exit "$fail"
