//! Workspace-root convenience crate for the DVAFS reproduction.
//!
//! This crate only re-exports the member crates so that the `examples/` and
//! `tests/` directories at the repository root can reach every subsystem
//! through one dependency. The real public API lives in [`dvafs`] and the
//! substrate crates.

#![warn(missing_docs)]

pub use dvafs;
pub use dvafs_arith;
pub use dvafs_envision;
pub use dvafs_nn;
pub use dvafs_simd;
pub use dvafs_tech;
