//! Quickstart: the DVAFS controller and the subword-parallel multiplier.
//!
//! Run with: `cargo run --release --example quickstart`

use dvafs::controller::DvafsController;
use dvafs::report::{fmt_f, TextTable};
use dvafs_arith::multiplier::DvafsMultiplier;
use dvafs_arith::{Precision, SubwordMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DVAFS quickstart");
    println!("================\n");

    // 1. The functional side: one 16-bit multiplier, three operating modes.
    let m = DvafsMultiplier::new();
    println!("1x16b:  -1234 * 567          = {}", m.mul_full(-1234, 567));
    let p2 = m.mul_subwords(&[100, -100], &[25, 25], SubwordMode::X2);
    println!("2x8b :  [100, -100] * [25, 25]  = {p2:?} (two products per cycle)");
    let p4 = m.mul_subwords(&[1, -2, 3, -4], &[5, 6, -7, 7], SubwordMode::X4);
    println!("4x4b :  four packed products    = {p4:?}\n");

    // 2. The policy side: what does each precision requirement cost?
    let controller = DvafsController::new();
    let mut t = TextTable::new(vec![
        "precision",
        "mode",
        "f [MHz]",
        "Vas [V]",
        "Vnas [V]",
        "E/word [rel]",
    ]);
    for bits in [16u32, 12, 8, 4] {
        let plan = controller.plan(Precision::new(bits)?)?;
        t.row(vec![
            format!("{bits}b"),
            plan.mode.to_string(),
            fmt_f(plan.frequency_mhz, 0),
            fmt_f(plan.v_as, 2),
            fmt_f(plan.v_nas, 2),
            fmt_f(plan.relative_energy_per_word, 4),
        ]);
    }
    println!("{t}");

    // 3. A mixed-precision schedule: a small CNN whose layers need
    //    different precisions (the Fig. 6 situation).
    let tasks = vec![
        (Precision::new(4)?, 120_000u64), // early conv layer, very tolerant
        (Precision::new(6)?, 240_000),    // mid conv layer
        (Precision::new(9)?, 150_000),    // late conv layer, needs 1x16b
    ];
    let (plans, avg) = controller.schedule(&tasks)?;
    println!("mixed-precision schedule:");
    for ((p, words), plan) in tasks.iter().zip(plans.iter()) {
        println!(
            "  {:>4} x {:>7} words -> {} @ {:>3.0} MHz, {:.2} V  (E/word {:.3})",
            p.to_string(),
            words,
            plan.mode,
            plan.frequency_mhz,
            plan.v_as,
            plan.relative_energy_per_word
        );
    }
    println!(
        "average energy/word vs all-16b: {:.3} ({:.1}% saved)",
        avg,
        (1.0 - avg) * 100.0
    );
    Ok(())
}
