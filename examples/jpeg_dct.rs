//! The paper's introductory fault-tolerance example (ref [7]): the DCT of
//! a JPEG encoder still delivers useful quality at 4-bit accuracy
//! (~2 dB SNR loss), so a DVAFS data path can run it at a fraction of the
//! energy.
//!
//! The demonstration runs the full JPEG round trip — forward DCT on a
//! precision-scaled fixed-point data path, standard luminance quantization
//! table, dequantization, float inverse DCT — and compares the
//! reconstructed image against the full-precision pipeline. JPEG's own
//! coefficient quantization masks most of the arithmetic noise, which is
//! exactly why the DCT tolerates such low precision.
//!
//! Run with: `cargo run --release --example jpeg_dct`

use dvafs::controller::DvafsController;
use dvafs::report::{fmt_f, TextTable};
use dvafs_arith::metrics::snr_db;
use dvafs_arith::{Precision, Quantizer, RoundingMode};

const N: usize = 16; // image is N x N pixels (four 8x8 blocks)

/// Standard JPEG luminance quantization table (quality ~50).
const QTABLE: [[f64; 8]; 8] = [
    [16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0],
    [12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0],
    [14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0],
    [14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0],
    [18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0],
    [24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0],
    [49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0],
    [72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0],
];

fn cosine(x: usize, u: usize) -> f64 {
    ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
}

/// Forward 2-D DCT-II of one 8x8 block on a fixed-point data path whose
/// operands are gated to `bits` MSBs (16 bits = effectively exact).
fn dct8x8_fixed(block: &[[f64; 8]; 8], bits: u32) -> [[f64; 8]; 8] {
    let q = Quantizer::new(
        Precision::new(bits).expect("valid precision"),
        RoundingMode::RoundNearest,
    );
    // Pixels are 0..255 -> Q7 (full 16-bit span); cosines |c|<=1 -> Q14.
    let pix = |v: f64| i64::from(q.quantize((v * 128.0).round() as i32));
    let cos_fix = |c: f64| i64::from(q.quantize((c * 16384.0).round() as i32));
    let mut out = [[0.0; 8]; 8];
    for (u, orow) in out.iter_mut().enumerate() {
        for (v, out_uv) in orow.iter_mut().enumerate() {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let mut acc: i64 = 0;
            for (x, brow) in block.iter().enumerate() {
                for (y, &p) in brow.iter().enumerate() {
                    acc += pix(p - 128.0) * cos_fix(cosine(x, u) * cosine(y, v));
                }
            }
            *out_uv = 0.25 * cu * cv * acc as f64 / (128.0 * 16384.0);
        }
    }
    out
}

/// Float inverse 2-D DCT (the decoder is assumed exact).
fn idct8x8(coef: &[[f64; 8]; 8]) -> [[f64; 8]; 8] {
    let mut out = [[0.0; 8]; 8];
    for (x, orow) in out.iter_mut().enumerate() {
        for (y, out_xy) in orow.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (u, crow) in coef.iter().enumerate() {
                for (v, &c) in crow.iter().enumerate() {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    acc += cu * cv * c * cosine(x, u) * cosine(y, v);
                }
            }
            *out_xy = 0.25 * acc + 128.0;
        }
    }
    out
}

/// Full JPEG round trip of one block at a DCT precision.
fn roundtrip(block: &[[f64; 8]; 8], bits: u32) -> [[f64; 8]; 8] {
    let mut coef = dct8x8_fixed(block, bits);
    for (u, row) in coef.iter_mut().enumerate() {
        for (v, c) in row.iter_mut().enumerate() {
            *c = (*c / QTABLE[u][v]).round() * QTABLE[u][v];
        }
    }
    idct8x8(&coef)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("JPEG DCT at reduced accuracy (paper intro, ref [7])");
    println!("===================================================\n");

    // A synthetic photographic-looking image: gradients plus texture.
    let image: Vec<Vec<f64>> = (0..N)
        .map(|x| {
            (0..N)
                .map(|y| {
                    let v = 128.0
                        + 60.0 * (x as f64 / N as f64 - 0.5)
                        + 40.0 * ((x as f64 * 0.8).sin() * (y as f64 * 0.6).cos())
                        + 20.0 * (y as f64 / N as f64);
                    v.clamp(0.0, 255.0)
                })
                .collect()
        })
        .collect();

    // Encode/decode every 8x8 block at each precision; SNR vs the source.
    let controller = DvafsController::new();
    let mut t = TextTable::new(vec![
        "DCT precision",
        "image SNR [dB]",
        "SNR loss [dB]",
        "DVAFS E/word [rel]",
    ]);
    let original: Vec<f64> = image.iter().flatten().copied().collect();
    let mut snr_full = 0.0;
    for bits in [16u32, 12, 8, 6, 4] {
        let mut recon = vec![vec![0.0f64; N]; N];
        for bx in 0..N / 8 {
            for by in 0..N / 8 {
                let mut block = [[0.0; 8]; 8];
                for x in 0..8 {
                    for y in 0..8 {
                        block[x][y] = image[bx * 8 + x][by * 8 + y];
                    }
                }
                let out = roundtrip(&block, bits);
                for x in 0..8 {
                    for y in 0..8 {
                        recon[bx * 8 + x][by * 8 + y] = out[x][y];
                    }
                }
            }
        }
        let flat: Vec<f64> = recon.iter().flatten().copied().collect();
        let snr = snr_db(&original, &flat);
        if bits == 16 {
            snr_full = snr;
        }
        let plan = controller.plan(Precision::new(bits)?)?;
        t.row(vec![
            format!("{bits}b"),
            fmt_f(snr, 1),
            fmt_f(snr_full - snr, 1),
            fmt_f(plan.relative_energy_per_word, 3),
        ]);
    }
    println!("{t}");
    println!("paper claim (ref [7]): the DCT of a JPEG encoder can run at 4-bit accuracy");
    println!("with only ~2 dB SNR loss — JPEG's own coefficient quantization masks the");
    println!("arithmetic noise — while the DVAFS data path spends >20x less energy/word.");
    Ok(())
}
