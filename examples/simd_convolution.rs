//! Running a convolution on the DVAFS SIMD vector processor.
//!
//! Executes the same convolution kernel in all three scaling regimes at
//! several precisions and prints the resulting energy, power and domain
//! splits — the Section III-B experiment in miniature. The outputs are
//! checked bit-exactly against a software recomputation every time.
//!
//! Run with: `cargo run --release --example simd_convolution`

use dvafs::report::{fmt_f, TextTable};
use dvafs_simd::energy::SimdEnergyModel;
use dvafs_simd::kernels::ConvKernel;
use dvafs_simd::processor::{ProcConfig, Processor};
use dvafs_tech::domains::PowerDomain;
use dvafs_tech::scaling::ScalingMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Convolution on the DVAFS SIMD processor (SW = 8)");
    println!("================================================\n");

    let model = SimdEnergyModel::new();
    let kernel = ConvKernel::random(25, 1024, 7);
    println!(
        "workload: {}-tap convolution, {} outputs, {} MACs\n",
        kernel.taps(),
        kernel.outputs(),
        kernel.mac_count()
    );

    let mut t = TextTable::new(vec![
        "regime",
        "bits",
        "mode",
        "f[MHz]",
        "Vas",
        "Vnas",
        "cycles",
        "mem%",
        "nas%",
        "as%",
        "P[mW]",
        "E/word[pJ]",
    ]);
    let mut baseline = None;
    for scaling in ScalingMode::ALL {
        for bits in [16u32, 8, 4] {
            let cfg = ProcConfig::new(8, scaling, bits)?;
            let proc = Processor::with_model(cfg, model.clone());
            let r = proc.run_kernel(&kernel)?;
            assert!(
                r.outputs_match(&kernel),
                "hardware outputs must be bit-exact"
            );
            let epw_pj = r.energy_per_word() * 1e12;
            let base = *baseline.get_or_insert(epw_pj);
            t.row(vec![
                scaling.to_string(),
                format!("{bits}b"),
                r.mode.to_string(),
                fmt_f(r.run.frequency_mhz, 0),
                fmt_f(r.run.rails.voltage(PowerDomain::AccuracyScalable), 2),
                fmt_f(r.run.rails.voltage(PowerDomain::NonScalable), 2),
                r.run.cycles.to_string(),
                fmt_f(r.run.share(PowerDomain::Memory), 0),
                fmt_f(r.run.share(PowerDomain::NonScalable), 0),
                fmt_f(r.run.share(PowerDomain::AccuracyScalable), 0),
                fmt_f(r.run.avg_power_w * 1e3, 1),
                format!("{} ({:.0}%)", fmt_f(epw_pj, 2), 100.0 * epw_pj / base),
            ]);
        }
    }
    println!("{t}");
    println!("every row computed identical outputs; only energy differs. DVAFS at 4x4b");
    println!("cuts frequency 4x, both logic rails, and runs 4 words per lane per cycle.");
    Ok(())
}
