//! Layer-wise precision tuning of a CNN and its energy on Envision.
//!
//! The flow now lives in the scenario registry as `cnn_layerwise`
//! (`dvafs run cnn_layerwise`); this example is a shim over it, so
//! `cargo run --release --example cnn_layerwise` prints the same
//! banner-plus-report text as the registry run.

fn main() {
    dvafs_bench::run_legacy("cnn_layerwise");
}
