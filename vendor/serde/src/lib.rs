//! Offline stub of `serde`.
//!
//! Mirrors the subset of the real API this workspace touches: the
//! `Serialize` / `Deserialize` trait names and the derive macros (re-exported
//! from the stub [`serde_derive`]). The derives expand to nothing, so no type
//! actually implements the traits — which is fine, because the workspace only
//! annotates types for future serialization and never requires the bounds.
//!
//! Swap for the real crates.io `serde` (same `[workspace.dependencies]`
//! entry, `version = "1.0"`, `features = ["derive"]`) once network access or
//! a vendored registry is available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}
