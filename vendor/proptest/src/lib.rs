//! Offline stub of `proptest`.
//!
//! The build environment has no registry access, so this vendors the subset
//! of the proptest API used by the workspace's property tests:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`
//! - [`strategy::Strategy`] with `Value`, implemented for numeric ranges,
//!   [`strategy::Just`], [`prop_oneof!`] unions and [`arbitrary::any`]
//! - [`array::uniform4`]
//! - [`prop_assert!`] / [`prop_assert_eq!`]
//!
//! Semantics versus the real crate: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), and there is **no shrinking** —
//! a failure reports the raw case. That trades minimal counterexamples for
//! zero dependencies; swap `vendor/proptest` for crates.io `proptest = "1.4"`
//! in `[workspace.dependencies]` when the registry is reachable.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case plumbing used by the expansion of [`crate::proptest!`].

    use std::collections::hash_map::DefaultHasher;
    use std::fmt;
    use std::hash::{Hash, Hasher};

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Builds the deterministic RNG for one property test.
    pub fn rng_for_test(test_name: &str) -> TestRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        // Fixed namespace constant so the stream is stable across runs.
        0xDA7E_2017_5EEDu64.hash(&mut h);
        TestRng::seed_from_u64(h.finish())
    }

    /// A failed property case (no shrinking in the stub).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Per-`proptest!` block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::test_runner::TestRng;
    use rand::{Rng, SampleRange, SampleUniform};

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just draws a value from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        T: SampleUniform + Copy,
        core::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        T: SampleUniform + Copy,
        core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, StandardSample};

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: StandardSample> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over the whole domain).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[S::Value; 4]`, all cells drawn from one strategy.
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
            ]
        }
    }

    /// Four independent draws from `strategy`, as an array.
    pub fn uniform4<S: Strategy>(strategy: S) -> Uniform4<S> {
        Uniform4(strategy)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::array::uniform4`, ...).
        pub use crate::array;
    }
}

/// Runs each contained `#[test]` function over many sampled cases.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional leading `#![proptest_config(...)]`, then test functions whose
/// arguments are `ident in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch {$cfg} $($rest)*);
    };
    (@munch {$cfg:expr} $(
        $(#[$meta:meta])*
        fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $bind =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch {$crate::ProptestConfig::default()} $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn coin() -> impl Strategy<Value = u8> {
        prop_oneof![Just(0u8), Just(1u8)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -8i32..=7, y in 0usize..4, f in 0.5f64..1.2) {
            prop_assert!((-8..=7).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.5..1.2).contains(&f));
        }

        #[test]
        fn oneof_and_arrays(c in coin(), arr in prop::array::uniform4(-8i32..=7)) {
            prop_assert!(c <= 1);
            for v in arr {
                prop_assert!((-8..=7).contains(&v));
            }
        }

        #[test]
        fn any_works(b in any::<bool>(), w in any::<u16>()) {
            prop_assert!(u16::from(b) <= 1);
            prop_assert_eq!(w.wrapping_sub(w), 0);
        }
    }
}
