//! Offline stub of `rand` 0.8.
//!
//! The build environment has no registry access, so this vendors the subset
//! of the `rand` API the workspace actually calls:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for the primitive types
//! - [`Rng::gen_range`] over `Range` / `RangeInclusive` of ints and floats
//!
//! The generator is SplitMix64 — statistically solid for simulation inputs
//! and fully deterministic per seed, which is all the experiment harness
//! needs. Note the stream differs from the real `StdRng` (ChaCha12), so
//! seeded expectations would shift if the real crate is swapped back in;
//! no test in this workspace asserts exact drawn values.

#![warn(missing_docs)]

/// The core of every generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Mirrors `rand::SeedableRng`; only the `seed_from_u64` entry point is used.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the stub's stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as the output of [`Rng::gen_range`].
///
/// Mirrors `rand::distributions::uniform::SampleUniform`; the single blanket
/// [`SampleRange`] impl below is what lets type inference flow from an
/// untyped range literal to the surrounding expression, exactly like the
/// real crate.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for ::core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for ::core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as StandardSample>::standard_sample(rng);
                let v = lo + unit * (hi - lo);
                // FP rounding in the lerp can land exactly on `hi`; keep the
                // half-open contract by folding that draw back to `lo`.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Mirrors `rand::Rng`: convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of an inferred primitive type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only `StdRng` in the stub).

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-32768..=32767);
            assert!((-32768..=32767).contains(&v));
            let f = rng.gen_range(-0.05f64..0.05);
            assert!((-0.05..0.05).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
