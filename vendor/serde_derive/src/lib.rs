//! Offline stub of `serde_derive`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal stand-in: the `Serialize` / `Deserialize` derives parse nothing and
//! expand to nothing. The workspace uses the derives purely as annotations
//! today (no code takes `T: Serialize` bounds); when real serialization is
//! needed, swap `vendor/serde*` for the crates.io packages in
//! `[workspace.dependencies]` and everything downstream keeps compiling.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
