//! Offline stub of `criterion`.
//!
//! The build environment has no registry access, so this vendors the subset
//! of the criterion API used by `crates/bench/benches/`: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs a short warm-up plus a fixed measurement loop and
//! prints mean wall-clock time per iteration. There is no statistical
//! analysis, outlier rejection, or HTML report — swap `vendor/criterion` for
//! crates.io `criterion = "0.5"` in `[workspace.dependencies]` for real
//! measurements.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Number of timed iterations per benchmark (after a 3-iteration warm-up).
const MEASURE_ITERS: u32 = 30;

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `body` repeatedly and records mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..3 {
            std::hint::black_box(body());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(body());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(MEASURE_ITERS);
    }
}

fn report(id: &str, bencher: &Bencher) {
    println!("bench {id:<48} {:>12.0} ns/iter", bencher.nanos_per_iter);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Finishes the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runner, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups, like `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
